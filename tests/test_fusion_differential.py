"""Differential fuzz: fusion is a pure schedule transformation.

Generates randomized SPMD programs (seeded Philox, so every run of the
suite sees the same corpus) mixing the latency-bound collectives with
local work, explicit ``comm.batch`` requests and communicator splits,
then proves for every program that enabling automatic fusion
(``fuse=True``) changes *nothing* except the superstep count:

* per-rank return values are bit-identical,
* every counter except ``supersteps``/``wait`` is bit-identical
  (``supersteps`` may only shrink; imbalance ``wait`` is re-measured at
  the surviving synchronization points),
* both runs' traces aggregate exactly to their counter reports,
* the per-group program-level collective sequence is preserved — fusion
  merges adjacent supersteps, it never reorders or drops a collective.

A reduced corpus re-runs on the multiprocess backend (skipping
gracefully where worker processes are unavailable) asserting the sim
and mp traces are event-for-event identical under both fusion settings.

Environment knobs (CI uses them to bound the spawn-heavy mp leg):
``REPRO_FUZZ_PROGRAMS`` (default 200) and ``REPRO_FUZZ_MP_PROGRAMS``
(default 4).
"""

import dataclasses
import operator
import os

import numpy as np
import pytest

from repro.rng import philox_stream
from repro.runtime import MpBackend, SimBackend
from repro.trace import FINAL, RecordingTracer, aggregate_trace
from tests.conftest import require_mp

N_PROGRAMS = int(os.environ.get("REPRO_FUZZ_PROGRAMS", "200"))
N_MP_PROGRAMS = int(os.environ.get("REPRO_FUZZ_MP_PROGRAMS", "4"))

_COUNTER_FIELDS = ("p", "computation", "volume", "misses",
                   "total_ops", "total_volume")

# Opcode vocabulary with sampling weights: mostly latency-bound fusable
# collectives, seasoned with local work (which dirties arrivals and must
# block auto-fusion), explicit batches, and the occasional split.
_OPS = ("allreduce", "bcast", "allgather", "gatherv", "work", "batch",
        "split", "barrier")
_WEIGHTS = np.array([5.0, 4.0, 4.0, 3.0, 3.0, 2.0, 1.0, 2.0])
_WEIGHTS /= _WEIGHTS.sum()


def gen_opcodes(seed: int) -> tuple:
    """One random program: a tuple of (kind, a, b) opcode triples."""
    rng = philox_stream(seed, stream_id=77)
    length = int(rng.integers(4, 14))
    ops = []
    n_splits = 0
    for _ in range(length):
        kind = _OPS[int(rng.choice(len(_OPS), p=_WEIGHTS))]
        if kind == "split":
            if n_splits >= 2:
                kind = "allreduce"
            else:
                n_splits += 1
        ops.append((kind, int(rng.integers(1, 9)), int(rng.integers(0, 64))))
    # Every surviving group synchronizes once at the end, so programs
    # whose tail was pure local work still produce a comparable event.
    ops.append(("allreduce", 1, 0))
    return tuple(ops)


def fuzz_program(ctx, opcodes):
    """Interpret one opcode program (module-level: mp ships it by pickle)."""
    comm = ctx.comm
    acc = []
    for kind, a, b in opcodes:
        root = b % comm.size
        if kind == "work":
            ctx.charge(ops=float(a * (comm.rank % 3)))
        elif kind == "allreduce":
            v = yield from comm.allreduce(a * 0.5 + comm.rank,
                                          op=operator.add)
            acc.append(v)
        elif kind == "bcast":
            payload = a + 10 * comm.rank if comm.rank == root else None
            v = yield from comm.bcast(payload, root=root)
            acc.append(v)
        elif kind == "allgather":
            vs = yield from comm.allgather(comm.rank * 7 + a)
            acc.append(tuple(vs))
        elif kind == "gatherv":
            col = np.arange(a + comm.rank, dtype=np.int64) * (comm.rank + 1)
            got = yield from comm.gatherv(col, root=root)
            if comm.rank == root:
                acc.append((int(got.columns[0].sum()),
                            tuple(int(c) for c in got.counts)))
        elif kind == "batch":
            r1, r2 = yield from comm.batch(
                comm.op_allreduce(a + comm.rank, operator.add),
                comm.op_allgather(comm.rank * a),
            )
            acc.append((r1, tuple(r2)))
        elif kind == "split":
            comm = yield from comm.split((comm.rank + a) % 2, key=comm.rank)
        elif kind == "barrier":
            yield from comm.barrier()
    return acc


def strip_wall(events):
    return [dataclasses.replace(ev, wall_s=0.0) for ev in events]


def program_kinds_by_gid(events) -> dict:
    """gid -> the program-level collective kinds, in group order (fused
    supersteps contribute their merged sub-kinds)."""
    out: dict = {}
    for ev in sorted(events, key=lambda e: (e.gid, e.gseq)):
        if ev.kind == FINAL:
            continue
        out.setdefault(ev.gid, []).extend(ev.fused or (ev.kind,))
    return out


def run_traced(opcodes, p, *, backend="sim", fuse=None):
    cls = SimBackend if backend == "sim" else MpBackend
    return cls(tracer=RecordingTracer(), fuse=fuse).run(
        fuzz_program, p, seed=0, args=(opcodes,))


def assert_fusion_invariants(base, fused):
    """The full fused-vs-unfused contract for one program."""
    assert base.values == fused.values
    for f in _COUNTER_FIELDS:
        assert getattr(base.report, f) == getattr(fused.report, f), \
            f"counter {f} diverged under fusion"
    assert fused.report.supersteps <= base.report.supersteps
    assert aggregate_trace(base.trace) == base.report
    assert aggregate_trace(fused.trace) == fused.report
    assert program_kinds_by_gid(base.trace) == program_kinds_by_gid(
        fused.trace)


class TestFusionFuzzSim:
    @pytest.mark.parametrize("p", [2, 4])
    def test_fused_equals_unfused(self, p):
        """The whole corpus, fused vs unfused, on the simulator."""
        fused_some = 0
        for seed in range(N_PROGRAMS):
            opcodes = gen_opcodes(seed)
            base = run_traced(opcodes, p, fuse=None)
            fused = run_traced(opcodes, p, fuse=True)
            try:
                assert_fusion_invariants(base, fused)
            except AssertionError as exc:  # pragma: no cover - diagnostics
                raise AssertionError(
                    f"program seed={seed} p={p} opcodes={opcodes}: {exc}"
                ) from exc
            if fused.report.supersteps < base.report.supersteps:
                fused_some += 1
        # The corpus must actually exercise fusion, not vacuously pass.
        assert fused_some >= N_PROGRAMS // 4, (
            f"only {fused_some}/{N_PROGRAMS} programs fused anything"
        )

    def test_corpus_is_deterministic(self):
        assert [gen_opcodes(s) for s in range(10)] == \
            [gen_opcodes(s) for s in range(10)]

    def test_corpus_covers_all_opcodes(self):
        kinds = {op[0] for s in range(N_PROGRAMS) for op in gen_opcodes(s)}
        assert kinds == set(_OPS)

    def test_dirty_arrival_blocks_fusion(self):
        """A hand-written control: local work between two allreduces must
        keep them in separate supersteps while clean ones merge."""
        clean = (("allreduce", 1, 0), ("allreduce", 2, 0))
        dirty = (("allreduce", 1, 0), ("work", 3, 0), ("allreduce", 2, 0))
        assert run_traced(clean, 2, fuse=True).report.supersteps == 1
        assert run_traced(dirty, 2, fuse=True).report.supersteps == 2


class TestFusionFuzzMp:
    @pytest.mark.parametrize("fuse", [None, True])
    def test_sim_mp_traces_identical(self, fuse):
        require_mp()
        for seed in range(N_MP_PROGRAMS):
            opcodes = gen_opcodes(seed)
            sim = run_traced(opcodes, 4, backend="sim", fuse=fuse)
            mp = run_traced(opcodes, 4, backend="mp", fuse=fuse)
            assert sim.values == mp.values, f"seed={seed}"
            assert sim.report == mp.report, f"seed={seed}"
            assert strip_wall(sim.trace) == strip_wall(mp.trace), \
                f"seed={seed}"

    def test_mp_fused_equals_unfused(self):
        require_mp()
        opcodes = gen_opcodes(1)
        base = run_traced(opcodes, 4, backend="mp", fuse=None)
        fused = run_traced(opcodes, 4, backend="mp", fuse=True)
        assert_fusion_invariants(base, fused)
