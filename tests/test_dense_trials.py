"""Dense bulk-contraction trial routing (scheduler + 2-out pipeline).

``dense=True`` densifies the wave's edge slice once and runs the
matrix-contraction Karger–Stein kernel per trial instead of the sparse
edge-list trials.  The two kernels follow different RNG trajectories, so
per-trial values may differ between exactly tied cuts — what must agree
(and what these tests pin) is the **final minimum-cut value**, which
both pipelines find with the same success probability for the same
budget, and bit-identical *self*-consistency: dense runs are invariant
to wave size, interleaving, and plan reuse.
"""

import numpy as np
import pytest

from repro.core.two_out import (
    DENSE_TRIAL_THRESHOLD,
    plan_two_out,
    two_out_minimum_cut,
)
from repro.graph import erdos_renyi, two_cliques_bridge
from repro.rng import philox_stream
from repro.sched import TrialScheduler


@pytest.fixture
def bridge():
    # two K12 cliques joined by 2 unit bridges: min cut value exactly 2
    return two_cliques_bridge(12, bridges=2)


def test_dense_threshold_exported():
    assert DENSE_TRIAL_THRESHOLD == 64


def test_dense_and_sparse_find_same_cut_value(bridge):
    sparse = TrialScheduler().run(bridge, 2, backend="sim", seed=3)
    dense = TrialScheduler().run(bridge, 2, backend="sim", seed=3,
                                 dense=True)
    assert sparse.value == dense.value == 2.0
    assert dense.completed == sparse.completed


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dense_differential_on_random_graphs(seed):
    g = erdos_renyi(24, 96, philox_stream(seed), weighted=True)
    sparse = TrialScheduler().run(g, 2, backend="sim", seed=seed)
    dense = TrialScheduler().run(g, 2, backend="sim", seed=seed,
                                 dense=True)
    assert dense.value == sparse.value


def test_dense_invariant_to_wave_size(bridge):
    whole = TrialScheduler().run(bridge, 2, backend="sim", seed=3,
                                 dense=True)
    waved = TrialScheduler(wave_size=3).run(bridge, 2, backend="sim",
                                            seed=3, dense=True)
    assert whole.value == waved.value
    assert (whole.ledger.fingerprint() == waved.ledger.fingerprint())


def test_dense_invariant_to_p(bridge):
    a = TrialScheduler().run(bridge, 2, backend="sim", seed=3, dense=True)
    b = TrialScheduler().run(bridge, 5, backend="sim", seed=3, dense=True)
    assert a.ledger.fingerprint() == b.ledger.fingerprint()


def test_two_out_routes_tiny_replicas_densely(bridge):
    """Replicas contract far below the threshold, so the 2-out pipeline
    dispatches them on the dense kernel — same cut value as forcing the
    sparse path, bit for bit."""
    dense_res = two_out_minimum_cut(bridge, 2, seed=5, backend="sim",
                                    force=True)
    sparse_res = two_out_minimum_cut(bridge, 2, seed=5, backend="sim",
                                     force=True, dense_threshold=0)
    assert dense_res.value == sparse_res.value == 2.0
    assert dense_res.two_out.replicas == sparse_res.two_out.replicas
    assert dense_res.two_out.total_trials == sparse_res.two_out.total_trials


def test_two_out_plan_reuse_is_bit_identical(bridge):
    plan = plan_two_out(bridge, 2, seed=5, backend="sim")
    fresh = two_out_minimum_cut(bridge, 2, seed=5, backend="sim",
                                force=True)
    reused = two_out_minimum_cut(bridge, 2, seed=5, backend="sim",
                                 force=True, plan=plan)
    assert reused.value == fresh.value
    assert np.array_equal(reused.side, fresh.side)
    assert reused.two_out.total_trials == fresh.two_out.total_trials


def test_dense_counters_are_charged(bridge):
    res = TrialScheduler().run(bridge, 2, backend="sim", seed=3, dense=True)
    assert res.report.total_ops > 0
    assert res.report.misses > 0
