"""Differential trace tests: sim and mp emit identical event sequences.

The coordinator replicates each worker's post-collective counters with the
worker's own single-addition arithmetic, and the canonical Lamport order is
a function of per-rank program order only — so for a fixed seed the two
backends' traces must be *equal*, event for event, with ``wall_s`` as the
single exempt field (measured on mp, zero on sim).
"""

import dataclasses

import pytest

from repro.graph import erdos_renyi
from repro.harness import run_algorithm
from repro.rng import philox_stream
from repro.trace import FINAL, RecordingTracer, aggregate_trace
from tests.conftest import require_mp


def strip_wall(events):
    return [dataclasses.replace(ev, wall_s=0.0) for ev in events]


def traced(algorithm, g, p, seed, backend):
    tracer = RecordingTracer()
    # Two trials split the world into two concurrent sub-communicators —
    # the interleaving-sensitive case the canonical order must absorb.
    kwargs = {"trials": 2} if algorithm == "square_root" else {}
    return run_algorithm(algorithm, g, p=p, seed=seed, backend=backend,
                         tracer=tracer, **kwargs)


@pytest.fixture
def graph():
    return erdos_renyi(80, 200, philox_stream(42), weighted=True)


class TestTraceParity:
    def test_cc_traces_identical(self, graph):
        require_mp()
        sim = traced("parallel_cc", graph, p=4, seed=3, backend="sim")
        mp = traced("parallel_cc", graph, p=4, seed=3, backend="mp")
        assert strip_wall(sim.trace) == strip_wall(mp.trace)
        assert sim.report == mp.report

    def test_square_root_traces_identical(self, graph):
        # square_root splits the world into per-trial sub-communicators
        # that run concurrently: the strongest ordering test, since the
        # two schedulers interleave those groups completely differently.
        require_mp()
        sim = traced("square_root", graph, p=4, seed=3, backend="sim")
        mp = traced("square_root", graph, p=4, seed=3, backend="mp")
        assert strip_wall(sim.trace) == strip_wall(mp.trace)
        assert sim.report == mp.report
        assert any(len(ev.participants) < 4 for ev in sim.trace), (
            "expected sub-communicator collectives in the trace"
        )

    def test_approx_cut_traces_identical(self, graph):
        require_mp()
        sim = traced("approx_cut", graph, p=3, seed=9, backend="sim")
        mp = traced("approx_cut", graph, p=3, seed=9, backend="mp")
        assert strip_wall(sim.trace) == strip_wall(mp.trace)

    def test_mp_trace_aggregates_exactly(self, graph):
        require_mp()
        mp = traced("parallel_cc", graph, p=4, seed=3, backend="mp")
        assert aggregate_trace(mp.trace) == mp.report
        assert mp.trace[-1].kind == FINAL

    def test_mp_wall_clock_is_measured(self, graph):
        require_mp()
        mp = traced("parallel_cc", graph, p=2, seed=1, backend="mp")
        assert all(ev.wall_s >= 0.0 for ev in mp.trace)
        assert any(ev.wall_s > 0.0 for ev in mp.trace)

    def test_untraced_mp_unchanged(self, graph):
        """Tracing off: mp still matches sim bit-for-bit (the pre-trace
        wire protocol is what untraced runs put on the wire)."""
        require_mp()
        sim = run_algorithm("parallel_cc", graph, p=3, seed=6, backend="sim")
        mp = run_algorithm("parallel_cc", graph, p=3, seed=6, backend="mp")
        assert mp.trace is None and sim.trace is None
        assert mp.report == sim.report
        assert (mp.labels == sim.labels).all()
