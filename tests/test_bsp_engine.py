"""Tests for the BSP engine: collectives, groups, errors, cost accounting."""

import operator

import numpy as np
import pytest

from repro.bsp import (
    CollectiveMismatchError,
    DeadlockError,
    Engine,
    run_spmd,
)


class TestCollectives:
    def test_barrier(self):
        def prog(ctx):
            yield from ctx.comm.barrier()
            return ctx.rank

        res = run_spmd(prog, 4)
        assert res.values == [0, 1, 2, 3]

    def test_bcast(self):
        def prog(ctx):
            x = yield from ctx.comm.bcast("hello" if ctx.rank == 0 else None)
            return x

        assert run_spmd(prog, 3).values == ["hello"] * 3

    def test_bcast_nonzero_root(self):
        def prog(ctx):
            x = yield from ctx.comm.bcast(ctx.rank * 10 if ctx.rank == 2 else None,
                                          root=2)
            return x

        assert run_spmd(prog, 4).values == [20] * 4

    def test_gather(self):
        def prog(ctx):
            xs = yield from ctx.comm.gather(ctx.rank ** 2)
            return xs

        values = run_spmd(prog, 4).values
        assert values[0] == [0, 1, 4, 9]
        assert values[1] is None

    def test_allgather(self):
        def prog(ctx):
            xs = yield from ctx.comm.allgather(ctx.rank)
            return xs

        assert run_spmd(prog, 3).values == [[0, 1, 2]] * 3

    def test_scatter(self):
        def prog(ctx):
            x = yield from ctx.comm.scatter(
                [i * 2 for i in range(ctx.p)] if ctx.rank == 0 else None
            )
            return x

        assert run_spmd(prog, 4).values == [0, 2, 4, 6]

    def test_scatter_requires_full_list(self):
        def prog(ctx):
            x = yield from ctx.comm.scatter([1] if ctx.rank == 0 else None)
            return x

        with pytest.raises(ValueError):
            run_spmd(prog, 2)

    def test_reduce(self):
        def prog(ctx):
            s = yield from ctx.comm.reduce(ctx.rank + 1, op=operator.add)
            return s

        values = run_spmd(prog, 4).values
        assert values[0] == 10
        assert values[1] is None

    def test_reduce_fold_order_deterministic(self):
        def prog(ctx):
            s = yield from ctx.comm.reduce(str(ctx.rank), op=operator.add)
            return s

        assert run_spmd(prog, 4).values[0] == "0123"

    def test_allreduce(self):
        def prog(ctx):
            s = yield from ctx.comm.allreduce(ctx.rank, op=max)
            return s

        assert run_spmd(prog, 5).values == [4] * 5

    def test_alltoall(self):
        def prog(ctx):
            out = yield from ctx.comm.alltoall(
                [ctx.rank * 10 + j for j in range(ctx.p)]
            )
            return out

        values = run_spmd(prog, 3).values
        # member i receives [j*10 + i for j]
        assert values[1] == [1, 11, 21]

    def test_alltoall_wrong_size(self):
        def prog(ctx):
            out = yield from ctx.comm.alltoall([0])
            return out

        with pytest.raises(ValueError):
            run_spmd(prog, 2)

    def test_numpy_payloads(self):
        def prog(ctx):
            xs = yield from ctx.comm.allreduce(
                np.full(3, ctx.rank, dtype=np.int64), op=operator.add
            )
            return xs

        values = run_spmd(prog, 3).values
        assert np.array_equal(values[0], np.full(3, 3))

    def test_single_processor(self):
        def prog(ctx):
            a = yield from ctx.comm.allreduce(5, op=operator.add)
            b = yield from ctx.comm.gather(7)
            return a, b

        assert run_spmd(prog, 1).values == [(5, [7])]


class TestSplit:
    def test_split_groups(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(ctx.rank % 2)
            s = yield from sub.allreduce(ctx.rank, op=operator.add)
            return sub.size, sub.rank, s

        values = run_spmd(prog, 6).values
        # evens: 0,2,4 -> sum 6; odds: 1,3,5 -> sum 9
        assert values[0] == (3, 0, 6)
        assert values[1] == (3, 0, 9)
        assert values[4] == (3, 2, 6)

    def test_split_preserves_order(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(0)
            return sub.rank

        assert run_spmd(prog, 4).values == [0, 1, 2, 3]

    def test_split_with_key_reorders(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(0, key=ctx.p - ctx.rank)
            return sub.rank

        assert run_spmd(prog, 4).values == [3, 2, 1, 0]

    def test_nested_split(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(ctx.rank // 2)
            sub2 = yield from sub.split(sub.rank)
            s = yield from sub2.allreduce(ctx.rank, op=operator.add)
            return sub2.size, s

        values = run_spmd(prog, 4).values
        assert all(v == (1, r) for v, r in zip(values, range(4)))

    def test_groups_progress_independently(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(ctx.rank % 2)
            # group 0 performs extra rounds; group 1 returns immediately
            total = 0
            rounds = 3 if ctx.rank % 2 == 0 else 1
            for _ in range(rounds):
                total = yield from sub.allreduce(1, op=operator.add)
            return total

        values = run_spmd(prog, 4).values
        assert values == [2, 2, 2, 2]


class TestErrors:
    def test_mismatched_collectives(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.barrier()
            else:
                yield from ctx.comm.allreduce(1, op=operator.add)
            return None

        with pytest.raises(CollectiveMismatchError):
            run_spmd(prog, 2)

    def test_mismatched_roots(self):
        def prog(ctx):
            x = yield from ctx.comm.bcast(1, root=ctx.rank % 2)
            return x

        with pytest.raises(CollectiveMismatchError):
            run_spmd(prog, 2)

    def test_deadlock_partial_termination(self):
        def prog(ctx):
            if ctx.rank == 0:
                return 0  # terminates without the collective
            yield from ctx.comm.barrier()
            return 1

        with pytest.raises(DeadlockError):
            run_spmd(prog, 2)

    def test_yield_garbage(self):
        def prog(ctx):
            yield 42

        with pytest.raises(TypeError):
            run_spmd(prog, 2)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            run_spmd(lambda ctx: iter(()), 0)

    def test_invalid_root(self):
        def prog(ctx):
            x = yield from ctx.comm.bcast(1, root=9)
            return x

        with pytest.raises(ValueError):
            run_spmd(prog, 2)


class TestAccounting:
    def test_supersteps_count_collectives(self):
        def prog(ctx):
            yield from ctx.comm.barrier()
            yield from ctx.comm.barrier()
            yield from ctx.comm.barrier()
            return None

        assert run_spmd(prog, 3).report.supersteps == 3

    def test_group_supersteps_max_not_sum(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(ctx.rank % 2)
            rounds = 5 if ctx.rank % 2 == 0 else 2
            for _ in range(rounds):
                yield from sub.barrier()
            return None

        # split (1) + max(5, 2) group barriers
        assert run_spmd(prog, 4).report.supersteps == 6

    def test_volume_charged_for_bcast(self):
        def prog(ctx):
            x = yield from ctx.comm.bcast(
                np.zeros(100) if ctx.rank == 0 else None
            )
            return x.size

        rep = run_spmd(prog, 4).report
        assert rep.volume >= 100

    def test_computation_is_max(self):
        def prog(ctx):
            ctx.charge(ops=100 * (ctx.rank + 1))
            yield from ctx.comm.barrier()
            return None

        rep = run_spmd(prog, 3).report
        assert rep.computation >= 300
        assert rep.total_ops >= 600

    def test_wait_records_imbalance(self):
        def prog(ctx):
            ctx.charge(ops=1000 if ctx.rank == 0 else 0)
            yield from ctx.comm.barrier()
            return None

        rep = run_spmd(prog, 2).report
        assert rep.wait == 1000  # rank 1 waited for rank 0

    def test_charge_helpers(self):
        def prog(ctx):
            ctx.charge_scan(100)
            ctx.charge_sort(100)
            ctx.charge_random(10, working_set=10**9)
            yield from ctx.comm.barrier()
            return None

        rep = run_spmd(prog, 1).report
        assert rep.computation > 100
        assert rep.misses > 10

    def test_negative_charge_rejected(self):
        def prog(ctx):
            ctx.charge(ops=-1)
            yield from ctx.comm.barrier()
            return None

        with pytest.raises(ValueError):
            run_spmd(prog, 1)


class TestDeterminism:
    def test_same_seed_same_result(self):
        def prog(ctx):
            x = float(ctx.rng.random())
            xs = yield from ctx.comm.allgather(x)
            return xs

        a = run_spmd(prog, 4, seed=9).values
        b = run_spmd(prog, 4, seed=9).values
        assert a == b

    def test_different_seed_different_randomness(self):
        def prog(ctx):
            x = float(ctx.rng.random())
            xs = yield from ctx.comm.allgather(x)
            return xs

        a = run_spmd(prog, 4, seed=1).values
        b = run_spmd(prog, 4, seed=2).values
        assert a != b

    def test_rank_streams_differ(self):
        def prog(ctx):
            x = float(ctx.rng.random())
            xs = yield from ctx.comm.allgather(x)
            return xs

        xs = run_spmd(prog, 4, seed=5).values[0]
        assert len(set(xs)) == 4

    def test_engine_reusable(self):
        eng = Engine()

        def prog(ctx):
            yield from ctx.comm.barrier()
            return ctx.rank

        assert eng.run(prog, 2).values == [0, 1]
        assert eng.run(prog, 3).values == [0, 1, 2]


class TestRunResult:
    def test_root_value(self):
        def prog(ctx):
            yield from ctx.comm.barrier()
            return "root" if ctx.rank == 0 else "other"

        assert run_spmd(prog, 2).root_value == "root"

    def test_time_estimate_positive(self):
        def prog(ctx):
            ctx.charge(ops=1000)
            yield from ctx.comm.barrier()
            return None

        t = run_spmd(prog, 2).time
        assert t.total_s > 0
        assert 0 <= t.mpi_fraction <= 1
