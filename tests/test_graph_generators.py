"""Tests for the synthetic graph generators (§5 graph families)."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid_graph,
    ring_of_cliques,
    rmat,
    star_graph,
    two_cliques_bridge,
    verification_suite,
    watts_strogatz,
    weighted_cycle,
)
from repro.graph.validate import (
    brute_force_mincut,
    networkx_components,
    networkx_mincut,
)
from repro.rng import philox_stream


def assert_simple(g):
    """No loops, no duplicate (u,v) pairs, endpoints in range."""
    assert (g.u != g.v).all()
    assert g.u.min(initial=0) >= 0 and g.v.max(initial=0) < g.n
    codes = g.u * g.n + g.v
    assert np.unique(codes).size == g.m


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(100, 250, philox_stream(0))
        assert g.n == 100 and g.m == 250
        assert_simple(g)

    def test_deterministic(self):
        a = erdos_renyi(50, 100, philox_stream(7))
        b = erdos_renyi(50, 100, philox_stream(7))
        assert a == b

    def test_weighted(self):
        g = erdos_renyi(50, 100, philox_stream(1), weighted=True)
        assert g.w.min() >= 1 and g.w.max() <= 8

    def test_dense_limit(self):
        g = erdos_renyi(10, 45, philox_stream(2))
        assert g.m == 45  # complete graph

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 46, philox_stream(0))


class TestWattsStrogatz:
    def test_structure(self):
        g = watts_strogatz(100, 6, philox_stream(3))
        assert g.n == 100
        assert g.m <= 300  # rewiring can only merge edges
        assert g.m > 250
        assert_simple(g)

    def test_no_rewiring_is_ring_lattice(self):
        g = watts_strogatz(20, 4, philox_stream(0), rewire_p=0.0)
        assert g.m == 40
        assert networkx_components(g) == 1

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, philox_stream(0))

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, philox_stream(0))

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 2, philox_stream(0), rewire_p=1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, 3, philox_stream(4))
        assert g.m == (100 - 3) * 3
        assert_simple(g)

    def test_connected(self):
        g = barabasi_albert(200, 2, philox_stream(5))
        assert networkx_components(g) == 1

    def test_scale_free_hub(self):
        g = barabasi_albert(500, 2, philox_stream(6))
        deg = g.degrees()
        # preferential attachment produces hubs far above the mean degree
        assert deg.max() > 4 * deg.mean()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0, philox_stream(0))
        with pytest.raises(ValueError):
            barabasi_albert(5, 5, philox_stream(0))


class TestRmat:
    def test_basic(self):
        g = rmat(256, 2000, philox_stream(8))
        assert g.n == 256
        assert g.m >= 1900  # dedup tolerance
        assert_simple(g)

    def test_skewed_degrees(self):
        g = rmat(512, 4000, philox_stream(9))
        deg = g.degrees()
        assert deg.max() > 3 * deg.mean()

    def test_multigraph_mode(self):
        g = rmat(64, 500, philox_stream(10), simple=False)
        assert g.total_weight() > 0
        # weights carry the multiplicities
        assert g.w.max() >= 1

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(16, 10, philox_stream(0), a=0.9, b=0.2, c=0.2)


class TestDeterministicShapes:
    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert networkx_components(g) == 1

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert networkx_mincut(g) == 5.0

    def test_star(self):
        g = star_graph(8, weight=2.0)
        assert g.m == 7
        assert networkx_mincut(g) == 2.0

    def test_star_too_small(self):
        with pytest.raises(ValueError):
            star_graph(1)

    def test_cycle(self):
        g = weighted_cycle(5, np.array([5.0, 1.0, 4.0, 2.0, 3.0]))
        assert networkx_mincut(g) == 3.0  # 1 + 2

    def test_cycle_default_weights(self):
        assert networkx_mincut(weighted_cycle(7)) == 2.0

    def test_cycle_validation(self):
        with pytest.raises(ValueError):
            weighted_cycle(2)
        with pytest.raises(ValueError):
            weighted_cycle(4, np.array([1.0]))

    def test_two_cliques(self):
        g = two_cliques_bridge(5, bridge_weight=2.0)
        assert g.n == 10
        assert networkx_mincut(g) == 2.0

    def test_two_cliques_multi_bridge(self):
        g = two_cliques_bridge(6, bridges=2)
        assert networkx_mincut(g) == 2.0

    def test_two_cliques_validation(self):
        with pytest.raises(ValueError):
            two_cliques_bridge(1)
        with pytest.raises(ValueError):
            two_cliques_bridge(3, bridges=4)

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 5)
        assert g.n == 20
        assert networkx_mincut(g) == 2.0

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ring_of_cliques(2, 4)


class TestVerificationSuite:
    def test_component_counts_match_networkx(self):
        for case in verification_suite():
            assert networkx_components(case.graph) == case.components, case.name

    def test_mincut_values_match_ground_truth(self):
        for case in verification_suite():
            if case.mincut is None or case.graph.n > 16:
                continue
            assert brute_force_mincut(case.graph) == case.mincut, case.name

    def test_larger_cases_match_stoer_wagner(self):
        for case in verification_suite():
            if case.mincut is None or case.graph.n <= 16:
                continue
            assert networkx_mincut(case.graph) == case.mincut, case.name

    def test_names_unique(self):
        names = [c.name for c in verification_suite()]
        assert len(names) == len(set(names))
