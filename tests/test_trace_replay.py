"""Trace-replay corpus: blessed JSONL traces pin the superstep structure.

``tests/data/traces/`` holds recorded traces of three fixed-seed
workloads (iterated-sampling CC, the approximate min-cut pipeline, and
the 2-out-contraction min cut).  Each test replays a blessed file
through the full offline path — :func:`repro.trace.read_jsonl` →
:func:`repro.trace.aggregate_trace` → the analyzer
(:func:`repro.trace.fusion_plan` / :func:`repro.trace.format_analysis`)
— and re-runs the workload live, asserting the engine still produces
the *identical* event sequence.  Any drift in collective order,
payload sizes, counter deltas, or the recorded arrival-cleanliness
flags fails loudly here, turning "the schedule changed" from a silent
perf surprise into a reviewed diff of the blessed corpus.

Regenerate after an *intended* schedule change::

    PYTHONPATH=src python -m tests.test_trace_replay --regen

and commit the rewritten files alongside the change that moved them.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.bsp.fusion import FusionConfig
from repro.graph import erdos_renyi
from repro.harness import run_algorithm
from repro.rng import philox_stream
from repro.trace import (
    FINAL,
    RecordingTracer,
    aggregate_trace,
    find_fusible_runs,
    format_analysis,
    fusion_plan,
    read_jsonl,
    write_jsonl,
)

TRACE_DIR = Path(__file__).resolve().parent / "data" / "traces"

#: The blessed workloads.  Graphs are regenerated from Philox seeds, so
#: a corpus file is a pure function of this table and the engine.
CORPUS = {
    "cc_p4_seed3.jsonl": dict(
        algorithm="parallel_cc", n=80, m=200, gseed=42, p=4, seed=3,
        kwargs={}),
    "approx_cut_p3_seed9.jsonl": dict(
        algorithm="approx_cut", n=80, m=200, gseed=42, p=3, seed=9,
        kwargs={}),
    "two_out_p4_seed5.jsonl": dict(
        algorithm="square_root", n=80, m=200, gseed=42, p=4, seed=5,
        kwargs={"variant": "2out", "trial_scale": 0.25}),
}

#: Analyzer pins: expected superstep count and the fusion plan's
#: predicted savings on each blessed trace (default FusionConfig).
#: These move together with the corpus — regenerate both on intended
#: schedule changes.
ANALYZER_PINS = {
    "cc_p4_seed3.jsonl": {"supersteps": 5, "saved_supersteps": 1},
    "approx_cut_p3_seed9.jsonl": {"supersteps": 7, "saved_supersteps": 3},
    "two_out_p4_seed5.jsonl": {"supersteps": 3, "saved_supersteps": 1},
}


def record(name: str):
    """Re-run workload ``name`` live and return its recorded events."""
    spec = CORPUS[name]
    g = erdos_renyi(spec["n"], spec["m"], philox_stream(spec["gseed"]),
                    weighted=True)
    tracer = RecordingTracer()
    run_algorithm(spec["algorithm"], g, p=spec["p"], seed=spec["seed"],
                  backend="sim", tracer=tracer, **spec["kwargs"])
    return tracer.events()


def strip_wall(events):
    return [dataclasses.replace(ev, wall_s=0.0) for ev in events]


def split_runs(events):
    """Split a (possibly multi-run) canonical stream at FINAL records.

    A tracer may span several engine runs (the 2-out pipeline runs its
    planning program and its trial dispatches on one backend); the
    aggregation invariant applies per run.
    """
    runs, cur = [], []
    for ev in events:
        cur.append(ev)
        if ev.kind == FINAL:
            runs.append(cur)
            cur = []
    assert not cur, "trace ends without a FINAL flush record"
    return runs


@pytest.fixture(params=sorted(CORPUS))
def blessed(request):
    path = TRACE_DIR / request.param
    assert path.exists(), (
        f"blessed trace {path} missing — regenerate with "
        f"PYTHONPATH=src python -m tests.test_trace_replay --regen"
    )
    return request.param, read_jsonl(path)


class TestReplay:
    def test_replay_matches_live_run(self, blessed):
        name, events = blessed
        assert strip_wall(record(name)) == strip_wall(events)

    def test_blessed_trace_aggregates(self, blessed):
        """The delta-reconstruction invariant holds on the stored file
        (not just in memory): JSONL round-tripping preserved every bit."""
        _name, events = blessed
        for run in split_runs(events):
            report = aggregate_trace(run)
            assert report.supersteps == sum(
                1 for ev in run if ev.kind != FINAL)

    def test_blessed_traces_record_cleanliness(self, blessed):
        """Every collective event carries per-participant clean flags
        (the analyzer's fusion precondition), and some arrival is clean —
        otherwise the corpus could not exercise the fusion detector."""
        _name, events = blessed
        collectives = [ev for ev in events if ev.kind != FINAL]
        assert all(len(ev.clean) == len(ev.participants)
                   for ev in collectives)
        assert any(all(ev.clean) for ev in collectives)

    def test_analyzer_pins(self, blessed):
        name, events = blessed
        plan = fusion_plan(events)
        pins = ANALYZER_PINS[name]
        assert plan["supersteps"] == pins["supersteps"]
        assert plan["predicted"]["saved_supersteps"] == \
            pins["saved_supersteps"]
        assert plan["predicted"]["supersteps_after"] == \
            pins["supersteps"] - pins["saved_supersteps"]

    def test_plan_agrees_with_fused_rerun(self):
        """The analyzer's prediction on the blessed CC trace equals what
        actually happens when the same workload re-runs with fusion on."""
        name = "cc_p4_seed3.jsonl"
        spec = CORPUS[name]
        plan = fusion_plan(read_jsonl(TRACE_DIR / name))
        g = erdos_renyi(spec["n"], spec["m"], philox_stream(spec["gseed"]),
                        weighted=True)
        from repro.runtime import SimBackend
        fused = run_algorithm(spec["algorithm"], g, p=spec["p"],
                              seed=spec["seed"],
                              backend=SimBackend(fuse=True))
        assert fused.report.supersteps == \
            plan["predicted"]["supersteps_after"]

    def test_format_analysis_renders(self, blessed):
        _name, events = blessed
        text = format_analysis(events, k=5)
        assert "trace analysis" in text
        assert "fusible runs" in text

    def test_tighter_config_finds_fewer(self, blessed):
        """max_chain=2 can never detect more fusible savings than the
        default config — a monotonicity sanity check on the detector."""
        _name, events = blessed
        narrow = sum(r.saved_supersteps for r in find_fusible_runs(
            events, fuse=FusionConfig(max_chain=2)))
        wide = sum(r.saved_supersteps for r in find_fusible_runs(events))
        assert narrow <= wide


def regen() -> None:
    TRACE_DIR.mkdir(parents=True, exist_ok=True)
    for name in sorted(CORPUS):
        events = record(name)
        n = write_jsonl(events, TRACE_DIR / name)
        plan = fusion_plan(events)
        print(f"{name}: {n} events, supersteps={plan['supersteps']}, "
              f"saved_supersteps={plan['predicted']['saved_supersteps']}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
