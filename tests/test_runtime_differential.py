"""Differential tests: sim and mp backends must agree byte-for-byte.

For a fixed root seed the algorithmic results (labels, estimates, cut
values, witness partitions) and every BSP counter must be identical
across backends — only the time estimate (analytic vs measured) may
differ.  This is the acceptance gate that lets the multiprocess runtime
claim the simulator's correctness arguments.
"""

import numpy as np
import pytest

from repro.graph import erdos_renyi, two_cliques_bridge
from repro.rng import philox_stream
from repro.runtime import (
    ALGORITHMS,
    BackendParityError,
    assert_backend_parity,
    compare_backends,
)
from tests.conftest import require_mp


@pytest.fixture(scope="module")
def parity_graph():
    return erdos_renyi(250, 900, philox_stream(42), weighted=True)


class TestParity:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_parallel_cc(self, parity_graph, p):
        require_mp()
        report = assert_backend_parity("parallel_cc", parity_graph,
                                       p=p, seed=3)
        assert report.ok
        assert report.backends == ("sim", "mp")

    @pytest.mark.parametrize("p", [2, 4])
    def test_approx_cut(self, parity_graph, p):
        require_mp()
        assert_backend_parity("approx_cut", parity_graph, p=p, seed=5)

    @pytest.mark.parametrize("p", [2, 4])
    def test_square_root(self, parity_graph, p):
        require_mp()
        assert_backend_parity("square_root", parity_graph, p=p, seed=7,
                              trials=4)

    def test_square_root_structured(self):
        require_mp()
        g = two_cliques_bridge(7, bridge_weight=2.0)
        assert_backend_parity("square_root", g, p=2, seed=1, trials=6)

    def test_all_algorithms_covered(self):
        assert set(ALGORITHMS) == {"parallel_cc", "approx_cut",
                                   "square_root"}


class TestHarnessItself:
    def test_sim_vs_sim_trivially_ok(self, parity_graph):
        report = compare_backends("parallel_cc", parity_graph, p=2, seed=1,
                                  backends=("sim", "sim"))
        assert report.ok

    def test_seed_mismatch_is_detected(self, parity_graph):
        """The comparator must actually see differences, not vacuously pass."""
        a = compare_backends("parallel_cc", parity_graph, p=2, seed=1,
                             backends=("sim", "sim"))
        assert a.ok
        from repro.core import connected_components

        ra = connected_components(parity_graph, p=2, seed=1)
        rb = connected_components(parity_graph, p=2, seed=2)
        # Different seeds give different counter trajectories on this graph.
        assert ra.report != rb.report

    def test_unknown_algorithm_rejected(self, parity_graph):
        with pytest.raises(ValueError, match="unknown algorithm"):
            compare_backends("tsp", parity_graph)

    def test_error_message_names_field(self, parity_graph, monkeypatch):
        require_mp()
        import repro.runtime.differential as diff

        real_cmp = diff._cmp_counters

        def poisoned(out, a, b):
            real_cmp(out, a, b)
            out.append("counters.supersteps: injected mismatch")

        monkeypatch.setattr(diff, "_cmp_counters", poisoned)
        with pytest.raises(BackendParityError, match="supersteps"):
            assert_backend_parity("parallel_cc", parity_graph, p=2, seed=1)


class TestHarnessRunAlgorithm:
    def test_dispatch(self, parity_graph):
        from repro.harness import run_algorithm

        res = run_algorithm("parallel_cc", parity_graph, p=2, seed=1)
        assert res.n_components >= 1

    def test_backend_flows_through(self, parity_graph):
        require_mp()
        from repro.harness import run_algorithm

        sim = run_algorithm("parallel_cc", parity_graph, p=2, seed=1)
        mp_ = run_algorithm("parallel_cc", parity_graph, p=2, seed=1,
                            backend="mp")
        assert sim.n_components == mp_.n_components
        assert np.array_equal(sim.labels, mp_.labels)

    def test_unknown_rejected(self, parity_graph):
        from repro.harness import run_algorithm

        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithm("sssp", parity_graph)
