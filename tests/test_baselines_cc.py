"""Tests for the connected-components baselines (BGL, Galois, PBGL)."""

import numpy as np
import pytest

from repro.baselines import bgl_cc, galois_cc, galois_cc_parallel, pbgl_cc
from repro.baselines.cc_bfs import build_csr
from repro.cache import LRUTracker
from repro.graph import EdgeList, erdos_renyi, grid_graph, verification_suite, watts_strogatz
from repro.graph.validate import networkx_components
from repro.rng import philox_stream
from tests.conftest import assert_same_partition


class TestBuildCSR:
    def test_degrees(self):
        g = EdgeList.from_pairs(4, [(0, 1), (1, 2), (1, 3)])
        xadj, adj = build_csr(g)
        assert (np.diff(xadj) == g.degrees()).all()
        assert adj.size == 2 * g.m

    def test_neighbours(self):
        g = EdgeList.from_pairs(3, [(0, 1), (1, 2)])
        xadj, adj = build_csr(g)
        assert set(adj[xadj[1]:xadj[2]].tolist()) == {0, 2}


class TestBGL:
    def test_matches_networkx(self, small_er):
        labels, count = bgl_cc(small_er)
        assert count == networkx_components(small_er)
        assert (labels[small_er.u] == labels[small_er.v]).all()

    def test_labels_dense_and_ordered(self):
        g = EdgeList.from_pairs(5, [(3, 4)])
        labels, count = bgl_cc(g)
        assert count == 4
        assert labels[0] == 0  # discovery order

    def test_empty(self):
        labels, count = bgl_cc(EdgeList.empty(3))
        assert count == 3

    def test_instrumented(self, small_er):
        mem = LRUTracker(M=1024, B=8)
        labels, count = bgl_cc(small_er, mem=mem)
        assert count == networkx_components(small_er)
        assert mem.miss_count > 0
        assert mem.op_count > 2 * small_er.m


class TestGalois:
    def test_matches_networkx(self, small_er):
        labels, count = galois_cc(small_er)
        assert count == networkx_components(small_er)

    def test_same_partition_as_bgl(self, small_er):
        la, _ = bgl_cc(small_er)
        lb, _ = galois_cc(small_er)
        assert_same_partition(small_er, la, lb)

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_parallel_matches(self, small_er, p):
        labels, count, report, time = galois_cc_parallel(small_er, p=p)
        assert count == networkx_components(small_er)
        assert report.supersteps <= 2

    def test_instrumented(self, small_er):
        mem = LRUTracker(M=1024, B=8)
        _, count = galois_cc(small_er, mem=mem)
        assert count == networkx_components(small_er)
        assert mem.miss_count > 0


class TestPBGL:
    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_matches_networkx(self, small_er, p):
        labels, count, report, time = pbgl_cc(small_er, p=p)
        assert count == networkx_components(small_er)
        assert (labels[small_er.u] == labels[small_er.v]).all()

    def test_graph_families(self):
        rng = philox_stream(90)
        for g in (watts_strogatz(100, 4, rng), grid_graph(8, 9),
                  erdos_renyi(150, 150, rng)):
            _, count, _, _ = pbgl_cc(g, p=4)
            assert count == networkx_components(g)

    def test_logarithmic_supersteps(self):
        """PBGL needs O(log n) rounds — visibly more than the sampling CC."""
        from repro.core import connected_components

        g = watts_strogatz(512, 4, philox_stream(91))
        _, _, rep_pbgl, _ = pbgl_cc(g, p=4)
        rep_cc = connected_components(g, p=4, seed=1).report
        assert rep_pbgl.supersteps > rep_cc.supersteps

    def test_empty_graph(self):
        labels, count, _, _ = pbgl_cc(EdgeList.empty(6), p=2)
        assert count == 6

    def test_single_component(self):
        g = grid_graph(6, 6)
        _, count, _, _ = pbgl_cc(g, p=3)
        assert count == 1

    def test_verification_suite(self):
        for case in verification_suite():
            _, count, _, _ = pbgl_cc(case.graph, p=3)
            assert count == case.components, case.name
