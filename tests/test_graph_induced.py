"""Tests for induced subgraphs and degree statistics."""

import numpy as np
import pytest

from repro.graph import EdgeList, complete_graph, erdos_renyi
from repro.rng import philox_stream


class TestInduced:
    def test_basic(self):
        g = EdgeList.from_pairs(5, [(0, 1, 2.0), (1, 2, 1.0), (3, 4, 5.0)])
        sub, mapping = g.induced(np.array([1, 2, 3]))
        assert sub.n == 3
        assert sub.as_tuples() == [(0, 1, 1.0)]  # only (1,2) survives
        assert mapping.tolist() == [1, 2, 3]

    def test_whole_graph(self):
        g = complete_graph(5)
        sub, mapping = g.induced(np.arange(5))
        assert sub.m == g.m

    def test_empty_selection(self):
        g = complete_graph(4)
        sub, mapping = g.induced(np.array([], dtype=np.int64))
        assert sub.n == 0 and sub.m == 0

    def test_preserves_weights(self):
        g = erdos_renyi(30, 100, philox_stream(80), weighted=True)
        vertices = np.arange(0, 30, 2)
        sub, mapping = g.induced(vertices)
        for u, v, w in sub.as_tuples():
            ou, ov = mapping[int(u)], mapping[int(v)]
            pairs = {(min(a, b), max(a, b)): wt for a, b, wt in g.as_tuples()}
            assert pairs[(min(ou, ov), max(ou, ov))] == w

    def test_out_of_range_rejected(self):
        g = complete_graph(3)
        with pytest.raises(ValueError):
            g.induced(np.array([0, 5]))

    def test_duplicates_rejected(self):
        g = complete_graph(3)
        with pytest.raises(ValueError):
            g.induced(np.array([0, 0]))

    def test_renumbering_order(self):
        g = EdgeList.from_pairs(4, [(2, 3)])
        sub, mapping = g.induced(np.array([3, 2]))
        # vertex order follows the selection order
        assert mapping.tolist() == [3, 2]
        assert sub.as_tuples() == [(0, 1, 1.0)]


class TestDegreeStatistics:
    def test_regular_graph(self):
        g = complete_graph(6)
        stats = g.degree_statistics()
        assert stats["min"] == stats["max"] == 5
        assert stats["std"] == 0.0

    def test_star_is_skewed(self):
        from repro.graph import star_graph

        stats = star_graph(10).degree_statistics()
        assert stats["max"] == 9
        assert stats["min"] == 1
        assert stats["median"] == 1.0

    def test_empty(self):
        stats = EdgeList.empty(0).degree_statistics()
        assert stats["mean"] == 0.0
