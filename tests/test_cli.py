"""Tests for the artifact-style CLI."""

import pytest

from repro.cli import main
from repro.graph import read_edgelist


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    rc = main([
        "generate", "--family", "er", "--n", "120", "--degree", "6",
        "--weighted", "--seed", "3", "--out", str(path),
    ])
    assert rc == 0
    return path


class TestGenerate:
    @pytest.mark.parametrize("family", ["er", "ws", "ba", "rmat"])
    def test_families(self, tmp_path, family):
        out = tmp_path / f"{family}.txt"
        rc = main([
            "generate", "--family", family, "--n", "64", "--degree", "4",
            "--seed", "1", "--out", str(out),
        ])
        assert rc == 0
        g = read_edgelist(out)
        assert g.n == 64
        assert g.m > 0

    def test_explicit_m(self, tmp_path):
        out = tmp_path / "er.txt"
        main(["generate", "--family", "er", "--n", "50", "--m", "99",
              "--seed", "1", "--out", str(out)])
        assert read_edgelist(out).m == 99

    def test_unknown_family_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--family", "nope", "--n", "10",
                  "--out", str(tmp_path / "x.txt")])


class TestAlgorithms:
    def test_parallel_cc(self, graph_file, capsys):
        rc = main(["parallel_cc", str(graph_file), "--procs", "4", "--seed", "1"])
        assert rc == 0
        line = capsys.readouterr().out.strip()
        fields = line.split(",")
        assert fields[0] == str(graph_file)
        assert fields[7] == "cc"
        assert int(fields[8]) >= 1

    def test_approx_cut(self, graph_file, capsys):
        rc = main(["approx_cut", str(graph_file), "-p", "3", "--seed", "2"])
        assert rc == 0
        fields = capsys.readouterr().out.strip().split(",")
        assert fields[7] == "approx_cut"
        assert float(fields[8]) >= 0

    def test_square_root(self, graph_file, capsys):
        rc = main(["square_root", str(graph_file), "-p", "2", "--seed", "2",
                   "--trial-scale", "0.2"])
        assert rc == 0
        fields = capsys.readouterr().out.strip().split(",")
        assert fields[7] == "square_root"
        assert float(fields[8]) >= 0
        assert float(fields[5]) > 0  # execution time column

    def test_square_root_fixed_trials(self, graph_file, capsys):
        rc = main(["square_root", str(graph_file), "--trials", "2"])
        assert rc == 0

    def test_pipelined_flag(self, graph_file, capsys):
        rc = main(["approx_cut", str(graph_file), "--pipelined"])
        assert rc == 0

    def test_same_seed_same_output(self, graph_file, capsys):
        main(["parallel_cc", str(graph_file), "--seed", "9"])
        a = capsys.readouterr().out
        main(["parallel_cc", str(graph_file), "--seed", "9"])
        b = capsys.readouterr().out
        assert a == b

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["parallel_cc", str(tmp_path / "missing.txt")])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
