"""Tests for the artifact-style CLI."""

import pytest

from repro.cli import main
from repro.graph import read_edgelist
from tests.conftest import require_mp


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    rc = main([
        "generate", "--family", "er", "--n", "120", "--degree", "6",
        "--weighted", "--seed", "3", "--out", str(path),
    ])
    assert rc == 0
    return path


class TestGenerate:
    @pytest.mark.parametrize("family", ["er", "ws", "ba", "rmat"])
    def test_families(self, tmp_path, family):
        out = tmp_path / f"{family}.txt"
        rc = main([
            "generate", "--family", family, "--n", "64", "--degree", "4",
            "--seed", "1", "--out", str(out),
        ])
        assert rc == 0
        g = read_edgelist(out)
        assert g.n == 64
        assert g.m > 0

    def test_explicit_m(self, tmp_path):
        out = tmp_path / "er.txt"
        main(["generate", "--family", "er", "--n", "50", "--m", "99",
              "--seed", "1", "--out", str(out)])
        assert read_edgelist(out).m == 99

    def test_unknown_family_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--family", "nope", "--n", "10",
                  "--out", str(tmp_path / "x.txt")])


class TestAlgorithms:
    def test_parallel_cc(self, graph_file, capsys):
        rc = main(["parallel_cc", str(graph_file), "--procs", "4", "--seed", "1"])
        assert rc == 0
        line = capsys.readouterr().out.strip()
        fields = line.split(",")
        assert fields[0] == str(graph_file)
        assert fields[7] == "cc"
        assert int(fields[8]) >= 1

    def test_approx_cut(self, graph_file, capsys):
        rc = main(["approx_cut", str(graph_file), "-p", "3", "--seed", "2"])
        assert rc == 0
        fields = capsys.readouterr().out.strip().split(",")
        assert fields[7] == "approx_cut"
        assert float(fields[8]) >= 0

    def test_square_root(self, graph_file, capsys):
        rc = main(["square_root", str(graph_file), "-p", "2", "--seed", "2",
                   "--trial-scale", "0.2"])
        assert rc == 0
        fields = capsys.readouterr().out.strip().split(",")
        assert fields[7] == "square_root"
        assert float(fields[8]) >= 0
        assert float(fields[5]) > 0  # execution time column

    def test_square_root_fixed_trials(self, graph_file, capsys):
        rc = main(["square_root", str(graph_file), "--trials", "2"])
        assert rc == 0

    def test_pipelined_flag(self, graph_file, capsys):
        rc = main(["approx_cut", str(graph_file), "--pipelined"])
        assert rc == 0

    def test_same_seed_same_output(self, graph_file, capsys):
        main(["parallel_cc", str(graph_file), "--seed", "9"])
        a = capsys.readouterr().out
        main(["parallel_cc", str(graph_file), "--seed", "9"])
        b = capsys.readouterr().out
        assert a == b

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["parallel_cc", str(tmp_path / "missing.txt")])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestValidation:
    """Out-of-domain numeric options exit with a usage error (code 2)."""

    @pytest.mark.parametrize("procs", ["0", "-1", "-8"])
    def test_procs_floor(self, graph_file, capsys, procs):
        with pytest.raises(SystemExit) as exc:
            main(["parallel_cc", str(graph_file), "--procs", procs])
        assert exc.value.code == 2
        assert "--procs must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("scale", ["0", "-0.5"])
    def test_trial_scale_positive(self, graph_file, capsys, scale):
        with pytest.raises(SystemExit) as exc:
            main(["square_root", str(graph_file), "--trial-scale", scale])
        assert exc.value.code == 2
        assert "--trial-scale must be > 0" in capsys.readouterr().err

    @pytest.mark.parametrize("prob", ["0", "1", "1.5", "-0.1"])
    def test_success_prob_open_interval(self, graph_file, capsys, prob):
        with pytest.raises(SystemExit) as exc:
            main(["square_root", str(graph_file), "--success-prob", prob])
        assert exc.value.code == 2
        assert "--success-prob must be in (0, 1)" in capsys.readouterr().err

    def test_trials_floor(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["square_root", str(graph_file), "--trials", "0"])
        assert exc.value.code == 2
        assert "--trials must be >= 1" in capsys.readouterr().err

    def test_boundary_values_accepted(self, graph_file):
        assert main(["parallel_cc", str(graph_file), "--procs", "1"]) == 0
        assert main(["square_root", str(graph_file), "--trials", "1",
                     "--trial-scale", "0.01", "--success-prob", "0.5"]) == 0


class TestTraceOption:
    def test_writes_valid_jsonl(self, graph_file, tmp_path, capsys):
        from repro.trace import aggregate_trace, read_jsonl

        out = tmp_path / "trace.jsonl"
        rc = main(["parallel_cc", str(graph_file), "--procs", "3",
                   "--seed", "2", "--trace", str(out)])
        assert rc == 0
        events = read_jsonl(out)
        assert len(events) >= 2
        assert events[-1].kind == "final"
        assert aggregate_trace(events).p == 3

    def test_summary_table_renders(self, graph_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["parallel_cc", str(graph_file), "--trace", str(out)])
        printed = capsys.readouterr().out
        assert "trace summary" in printed
        assert "collectives:" in printed
        assert "volume histogram" in printed
        assert "heaviest supersteps" in printed
        assert f"-> {out}" in printed

    @pytest.mark.parametrize("command,extra", [
        ("approx_cut", []),
        ("square_root", ["--trials", "2"]),
    ])
    def test_all_algorithm_subcommands(self, graph_file, tmp_path, capsys,
                                       command, extra):
        from repro.trace import read_jsonl

        out = tmp_path / f"{command}.jsonl"
        rc = main([command, str(graph_file), "-p", "2", "--seed", "1",
                   "--trace", str(out)] + extra)
        assert rc == 0
        assert len(read_jsonl(out)) >= 2

    def test_unwritable_path_is_usage_error(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["parallel_cc", str(graph_file),
                  "--trace", "/nonexistent/dir/t.jsonl"])
        assert exc.value.code == 2
        assert "--trace directory" in capsys.readouterr().err

    def test_no_trace_no_summary(self, graph_file, capsys):
        main(["parallel_cc", str(graph_file)])
        printed = capsys.readouterr().out
        assert "trace summary" not in printed
        assert len(printed.strip().splitlines()) == 1

    def test_mp_backend_trace(self, graph_file, tmp_path, capsys):
        require_mp()
        from repro.trace import read_jsonl

        sim_out = tmp_path / "sim.jsonl"
        mp_out = tmp_path / "mp.jsonl"
        main(["parallel_cc", str(graph_file), "--seed", "4",
              "--backend", "sim", "--trace", str(sim_out)])
        main(["parallel_cc", str(graph_file), "--seed", "4",
              "--backend", "mp", "--trace", str(mp_out)])
        import dataclasses

        strip = lambda evs: [dataclasses.replace(e, wall_s=0.0) for e in evs]
        assert strip(read_jsonl(sim_out)) == strip(read_jsonl(mp_out))


class TestBackendOption:
    def test_unknown_backend_rejected(self, graph_file):
        with pytest.raises(SystemExit) as exc:
            main(["parallel_cc", str(graph_file), "--backend", "gpu"])
        assert exc.value.code == 2

    def test_mp_matches_sim_result_column(self, graph_file, capsys):
        require_mp()
        main(["parallel_cc", str(graph_file), "--seed", "4",
              "--backend", "sim"])
        sim_fields = capsys.readouterr().out.strip().split(",")
        main(["parallel_cc", str(graph_file), "--seed", "4",
              "--backend", "mp"])
        mp_fields = capsys.readouterr().out.strip().split(",")
        # identical CSV record except the two measured-time columns
        assert mp_fields[8] == sim_fields[8]  # component count
        assert mp_fields[:5] == sim_fields[:5]


class TestSchedulerOptions:
    def test_plain_run_prints_no_scheduler_line(self, graph_file, capsys):
        rc = main(["square_root", str(graph_file), "-p", "2", "--seed", "2",
                   "--trials", "4"])
        assert rc == 0
        assert "scheduler:" not in capsys.readouterr().out

    def test_any_flag_engages_scheduler(self, graph_file, capsys):
        rc = main(["square_root", str(graph_file), "-p", "2", "--seed", "2",
                   "--trials", "4", "--max-retries", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheduler: 4/4 trials completed" in out
        assert "achieved success probability" in out

    def test_scheduled_result_matches_legacy(self, graph_file, capsys):
        args = ["square_root", str(graph_file), "-p", "2", "--seed", "2",
                "--trials", "4"]
        main(args)
        legacy = capsys.readouterr().out.strip().split(",")
        main(args + ["--max-retries", "2"])
        sched = capsys.readouterr().out.splitlines()[0].split(",")
        assert sched[-1] == legacy[-1]  # same cut value column

    def test_crash_injection_recovers(self, graph_file, capsys):
        rc = main(["square_root", str(graph_file), "-p", "2", "--seed", "2",
                   "--trials", "4", "--retry-backoff", "0",
                   "--inject-faults", "crash:rank=1,step=1"])
        assert rc == 0
        assert "4/4 trials completed" in capsys.readouterr().out

    def test_checkpoint_file_written_and_resumable(self, graph_file,
                                                   tmp_path, capsys):
        ck = tmp_path / "ledger.jsonl"
        args = ["square_root", str(graph_file), "-p", "2", "--seed", "2",
                "--trials", "4", "--checkpoint", str(ck)]
        assert main(args) == 0
        assert ck.exists()
        first = capsys.readouterr().out.splitlines()
        assert main(args + ["--resume"]) == 0
        again = capsys.readouterr().out.splitlines()
        # Timing columns differ (the resume dispatches nothing); the cut
        # value and the scheduler summary line must not.
        assert again[0].split(",")[-1] == first[0].split(",")[-1]
        assert again[1] == first[1]

    def test_resume_requires_checkpoint(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["square_root", str(graph_file), "--resume"])
        assert exc_info.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    @pytest.mark.parametrize("plan", [
        "nonsense", "crash:rank=1", "stall:rank=0,step=0",
    ])
    def test_bad_fault_plan_is_usage_error(self, graph_file, capsys, plan):
        with pytest.raises(SystemExit) as exc_info:
            main(["square_root", str(graph_file), "--inject-faults", plan])
        assert exc_info.value.code == 2
        assert "--inject-faults" in capsys.readouterr().err

    def test_negative_retries_rejected(self, graph_file, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["square_root", str(graph_file), "--max-retries", "-1"])
        assert exc_info.value.code == 2

    def test_missing_checkpoint_dir_rejected(self, graph_file, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            main(["square_root", str(graph_file),
                  "--checkpoint", str(tmp_path / "nope" / "l.jsonl")])
        assert exc_info.value.code == 2

    def test_mp_backend_scheduled(self, graph_file, capsys):
        require_mp()
        rc = main(["square_root", str(graph_file), "-p", "2", "--seed", "2",
                   "--trials", "4", "--backend", "mp", "--retry-backoff", "0",
                   "--inject-faults", "crash:rank=1,step=1"])
        assert rc == 0
        assert "4/4 trials completed" in capsys.readouterr().out
