"""Tests for Prefix Selection and sparse/dense Bulk Edge Contraction (§4.1)."""

import numpy as np
import pytest

from repro.bsp import run_spmd
from repro.core.contraction import (
    combine_sorted_run,
    dense_bulk_contract,
    prefix_select,
    row_block,
    sparse_bulk_contract,
)
from repro.graph import AdjacencyMatrix, EdgeList, complete_graph, erdos_renyi
from repro.graph.contract import combine_parallel_edges, relabel_edges
from repro.rng import philox_stream


class TestPrefixSelect:
    def test_stops_at_target(self):
        # path edges in order: contracting all gives 1 component
        su = np.array([0, 1, 2, 3])
        sv = np.array([1, 2, 3, 4])
        labels, k = prefix_select(5, su, sv, 3)
        assert k == 3
        # the prefix (0,1), (1,2) merges {0,1,2}
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]

    def test_insufficient_sample(self):
        labels, k = prefix_select(6, np.array([0]), np.array([1]), 2)
        assert k == 5  # only one merge possible

    def test_duplicate_edges_skipped(self):
        su = np.array([0, 0, 0, 1])
        sv = np.array([1, 1, 1, 2])
        labels, k = prefix_select(4, su, sv, 2)
        assert k == 2

    def test_labels_dense(self):
        labels, k = prefix_select(5, np.array([0, 2]), np.array([1, 3]), 3)
        assert sorted(np.unique(labels).tolist()) == list(range(k))

    def test_target_one_contracts_component(self):
        g = complete_graph(6)
        labels, k = prefix_select(6, g.u, g.v, 1)
        assert k == 1

    def test_empty_sample(self):
        labels, k = prefix_select(4, np.zeros(0, np.int64), np.zeros(0, np.int64), 2)
        assert k == 4

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            prefix_select(4, np.zeros(0, np.int64), np.zeros(0, np.int64), 0)

    def test_never_overshoots(self):
        rng = philox_stream(1)
        for seed in range(10):
            g = erdos_renyi(30, 100, philox_stream(seed))
            perm = philox_stream(seed + 100).permutation(g.m)
            labels, k = prefix_select(30, g.u[perm], g.v[perm], 10)
            assert k >= 10


class TestCombineSortedRun:
    def test_combines(self):
        keys = np.array([1, 1, 2, 5, 5, 5])
        w = np.array([1.0, 2.0, 3.0, 1.0, 1.0, 1.0])
        k2, w2 = combine_sorted_run(keys, w)
        assert k2.tolist() == [1, 2, 5]
        assert w2.tolist() == [3.0, 3.0, 3.0]

    def test_empty(self):
        k2, w2 = combine_sorted_run(np.zeros(0, np.int64), np.zeros(0))
        assert k2.size == 0


def run_sparse_contract(g, labels, n_new, p, seed=0):
    slices = g.slices(p)

    def prog(ctx):
        sl = slices[ctx.rank]
        out = yield from sparse_bulk_contract(
            ctx, ctx.comm, sl.u, sl.v, sl.w, labels, n_new
        )
        return out

    res = run_spmd(prog, p, seed=seed)
    u = np.concatenate([v[0] for v in res.values])
    v_ = np.concatenate([v[1] for v in res.values])
    w = np.concatenate([v[2] for v in res.values])
    return EdgeList(n_new, u, v_, w, canonical=False), res


class TestSparseBulkContract:
    def _reference(self, g, labels, n_new):
        return combine_parallel_edges(relabel_edges(g, labels, n_new))

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_matches_sequential(self, p):
        g = erdos_renyi(40, 200, philox_stream(2), weighted=True)
        labels = philox_stream(3).integers(0, 10, 40)
        expected = self._reference(g, labels, 10)
        got, _ = run_sparse_contract(g, labels, 10, p)
        assert sorted(got.as_tuples()) == sorted(expected.as_tuples())

    def test_heavy_parallel_class_spanning_procs(self):
        """All edges collapse to one pair: the boundary fixup must combine
        weight spread over every processor."""
        pairs = [(i, i + 10, float(i + 1)) for i in range(10)]
        g = EdgeList.from_pairs(20, pairs)
        labels = np.array([0] * 10 + [1] * 10)
        got, _ = run_sparse_contract(g, labels, 2, 4)
        assert got.m == 1
        assert got.total_weight() == sum(i + 1 for i in range(10))

    def test_loops_removed(self):
        g = EdgeList.from_pairs(4, [(0, 1), (2, 3), (0, 2)])
        labels = np.array([0, 0, 1, 1])
        got, _ = run_sparse_contract(g, labels, 2, 2)
        assert got.m == 1
        assert got.as_tuples() == [(0, 1, 1.0)]

    def test_everything_contracts_away(self):
        g = complete_graph(6)
        labels = np.zeros(6, dtype=np.int64)
        got, _ = run_sparse_contract(g, labels, 1, 3)
        assert got.m == 0

    def test_identity_labels_only_combines(self):
        g = EdgeList.from_pairs(3, [(0, 1, 1.0), (0, 1, 2.0), (1, 2, 1.0)])
        got, _ = run_sparse_contract(g, np.arange(3), 3, 2)
        assert sorted(got.as_tuples()) == [(0, 1, 3.0), (1, 2, 1.0)]

    def test_constant_supersteps(self):
        g = erdos_renyi(60, 500, philox_stream(4), weighted=True)
        labels = philox_stream(5).integers(0, 20, 60)
        _, res = run_sparse_contract(g, labels, 20, 6)
        assert res.report.supersteps <= 5  # sort (3) + boundary allgather

    def test_total_weight_preserved_no_loops(self):
        """Contraction with injective-on-edges labels preserves weight."""
        g = erdos_renyi(50, 300, philox_stream(6), weighted=True)
        labels = np.arange(50) // 2  # merge pairs
        expected = self._reference(g, labels, 25)
        got, _ = run_sparse_contract(g, labels, 25, 4)
        assert got.total_weight() == pytest.approx(expected.total_weight())


class TestRowBlock:
    def test_partitions(self):
        n, p = 17, 4
        covered = []
        for r in range(p):
            lo, hi = row_block(r, p, n)
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    def test_balanced(self):
        sizes = [row_block(r, 5, 23)[1] - row_block(r, 5, 23)[0] for r in range(5)]
        assert max(sizes) - min(sizes) <= 1


def run_dense_contract(a, labels, n_new, p, seed=0):
    n = a.shape[0]

    def prog(ctx):
        lo, hi = row_block(ctx.rank, ctx.p, n)
        out = yield from dense_bulk_contract(
            ctx, ctx.comm, a[lo:hi].copy(), n, labels, n_new
        )
        return out

    res = run_spmd(prog, p, seed=seed)
    return np.vstack(res.values), res


class TestDenseBulkContract:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_matches_sequential(self, p):
        g = erdos_renyi(12, 40, philox_stream(7), weighted=True)
        a = AdjacencyMatrix.from_edgelist(g)
        labels = philox_stream(8).integers(0, 5, 12)
        expected = a.contract(labels, 5).a
        got, _ = run_dense_contract(a.a, labels, 5, p)
        assert np.allclose(got, expected)

    def test_identity(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(8)).a
        got, _ = run_dense_contract(a, np.arange(8), 8, 4)
        assert np.allclose(got, a)

    def test_diagonal_zeroed(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(6)).a
        got, _ = run_dense_contract(a, np.array([0, 0, 0, 1, 1, 1]), 2, 3)
        assert got[0, 0] == 0 and got[1, 1] == 0
        assert got[0, 1] == 9.0

    def test_more_procs_than_result_rows(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(6)).a
        got, _ = run_dense_contract(a, np.array([0, 0, 0, 1, 1, 1]), 2, 4)
        assert got.shape == (2, 2)
        assert got[0, 1] == 9.0

    def test_constant_supersteps(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(16)).a
        labels = np.arange(16) // 2
        _, res = run_dense_contract(a, labels, 8, 4)
        assert res.report.supersteps <= 2
