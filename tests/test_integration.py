"""End-to-end integration tests across modules.

Mirrors the artifact's verification methodology (§A.6.2): corner cases with
known answers, agreement with deterministic baselines on small inputs, and
multi-seed agreement on larger ones where each randomized execution
succeeds with probability >= 0.9.
"""

import numpy as np
import pytest

from repro import (
    Engine,
    MachineModel,
    approx_minimum_cut,
    connected_components,
    minimum_cut,
)
from repro.baselines import bgl_cc, galois_cc_parallel, karger_stein, pbgl_cc, stoer_wagner
from repro.bsp import fit_model
from repro.cache import CacheParams
from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    rmat,
    two_cliques_bridge,
    watts_strogatz,
)
from repro.graph.validate import networkx_components
from repro.rng import philox_stream


class TestCrossAlgorithmAgreement:
    """All five CC implementations agree on every graph family."""

    @pytest.mark.parametrize("family,args", [
        ("er", (400, 800)),
        ("ws", (256, 6)),
        ("ba", (300, 3)),
        ("rmat", (256, 1200)),
    ])
    def test_cc_implementations_agree(self, family, args):
        rng = philox_stream(hash(family) % 2 ** 31)
        g = {
            "er": lambda: erdos_renyi(*args, rng),
            "ws": lambda: watts_strogatz(*args, rng),
            "ba": lambda: barabasi_albert(*args, rng),
            "rmat": lambda: rmat(*args, rng),
        }[family]()
        truth = networkx_components(g)
        assert connected_components(g, p=4, seed=1).n_components == truth
        assert bgl_cc(g)[1] == truth
        assert galois_cc_parallel(g, p=4)[1] == truth
        assert pbgl_cc(g, p=4)[1] == truth

    def test_mincut_implementations_agree(self):
        g = erdos_renyi(50, 350, philox_stream(200), weighted=True)
        assert networkx_components(g) == 1
        sw, _ = stoer_wagner(g)
        ks, _ = karger_stein(g, seed=3)
        mc = minimum_cut(g, p=4, seed=3)
        assert sw == ks == mc.value

    def test_appmc_brackets_exact(self):
        g = two_cliques_bridge(16, bridge_weight=4.0)
        mc = minimum_cut(g, p=4, seed=5)
        ap = approx_minimum_cut(g, p=4, seed=5)
        assert mc.value == 4.0
        assert ap.witness_value >= mc.value
        # artifact: approximation ratio stayed below 11
        assert ap.estimate / mc.value <= 11
        assert mc.value / ap.estimate <= 11


class TestMultiSeedConsistency:
    """Artifact §A.6.2: compare multiple randomly seeded runs; with per-run
    success >= 0.9, twenty runs agreeing is overwhelming evidence."""

    def test_mc_multi_seed_agreement(self):
        g = erdos_renyi(40, 240, philox_stream(201), weighted=True)
        values = {minimum_cut(g, p=2, seed=s).value for s in range(10)}
        assert len(values) == 1

    def test_cc_multi_seed_agreement(self):
        g = rmat(300, 900, philox_stream(202))
        counts = {connected_components(g, p=4, seed=s).n_components
                  for s in range(10)}
        assert len(counts) == 1


class TestCostModelIntegration:
    def test_counters_flow_into_time(self):
        g = erdos_renyi(300, 1500, philox_stream(203))
        res = connected_components(g, p=4, seed=1)
        assert res.time.total_s > 0
        assert res.report.volume > 0
        assert res.report.supersteps > 0

    def test_custom_machine_model(self):
        g = erdos_renyi(200, 800, philox_stream(204))
        fast = Engine(machine=MachineModel(op_s=1e-12))
        slow = Engine(machine=MachineModel(op_s=1e-6))
        t_fast = connected_components(g, p=2, seed=1, engine=fast).time
        t_slow = connected_components(g, p=2, seed=1, engine=slow).time
        assert t_slow.app_s > t_fast.app_s

    def test_custom_cache_params(self):
        g = erdos_renyi(200, 800, philox_stream(205))
        tiny = Engine(cache=CacheParams(M=1 << 12, B=8))
        huge = Engine(cache=CacheParams(M=1 << 26, B=8))
        m_tiny = connected_components(g, p=2, seed=1, engine=tiny).report.misses
        m_huge = connected_components(g, p=2, seed=1, engine=huge).report.misses
        assert m_tiny >= m_huge

    def test_model_fit_roundtrip(self):
        """Fit the §5.3 model on simulated strong-scaling runs."""
        g = erdos_renyi(400, 3000, philox_stream(206), weighted=True)
        reports = []
        measured = []
        truth_model = MachineModel()
        for p in (1, 2, 4, 8):
            res = minimum_cut(g, p=p, seed=2, trials=4)
            reports.append(res.report)
            measured.append(truth_model.predict(res.report).total_s)
        fitted = fit_model(reports, measured)
        for r, m in zip(reports, measured):
            assert fitted.predict(r).total_s == pytest.approx(m, rel=0.5)


class TestScalingBehaviour:
    def test_mc_computation_decreases_with_p(self):
        """Strong scaling: per-processor computation shrinks as p grows."""
        g = erdos_renyi(60, 350, philox_stream(207), weighted=True)
        comp = {}
        for p in (1, 4):
            res = minimum_cut(g, p=p, seed=3, trials=8)
            comp[p] = res.report.computation
        assert comp[4] < comp[1]

    def test_cc_supersteps_flat_in_p(self):
        g = erdos_renyi(500, 2500, philox_stream(208))
        steps = [connected_components(g, p=p, seed=4).report.supersteps
                 for p in (2, 4, 8)]
        assert max(steps) - min(steps) <= 6

    def test_appmc_cheaper_than_mc(self):
        """§5.2: AppMC uses a fraction of MC's work on the same input."""
        g = erdos_renyi(80, 500, philox_stream(209), weighted=True)
        mc = minimum_cut(g, p=4, seed=5)
        ap = approx_minimum_cut(g, p=4, seed=5)
        assert ap.report.total_ops < mc.report.total_ops
