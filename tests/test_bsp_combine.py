"""Tests for the generic distributed combine-by-key (§4.1 remark)."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import run_spmd
from repro.bsp.combine import combine_by_key, combine_local_run


def run_combine(chunks, value_chunks, op=operator.add, p=None):
    p = p or len(chunks)

    def prog(ctx):
        keys = np.asarray(chunks[ctx.rank], dtype=np.int64)
        values = np.asarray(value_chunks[ctx.rank], dtype=np.float64)
        out = yield from combine_by_key(ctx, ctx.comm, keys, values, op)
        return out

    res = run_spmd(prog, p, seed=0)
    keys = np.concatenate([v[0] for v in res.values])
    values = np.concatenate([v[1] for v in res.values])
    return keys, values, res


class TestCombineLocalRun:
    def test_sums(self):
        k, v = combine_local_run(np.array([1, 1, 3]), np.array([2.0, 3.0, 4.0]))
        assert k.tolist() == [1, 3]
        assert v.tolist() == [5.0, 4.0]

    def test_custom_op(self):
        k, v = combine_local_run(np.array([1, 1, 1]), np.array([5.0, 2.0, 8.0]),
                                 op=max)
        assert v.tolist() == [8.0]

    def test_empty(self):
        k, v = combine_local_run(np.zeros(0, np.int64), np.zeros(0))
        assert k.size == 0


class TestCombineByKey:
    def test_basic_sum(self):
        keys, values, _ = run_combine(
            [[1, 2], [2, 3], [1, 3]],
            [[1.0, 1.0], [2.0, 5.0], [4.0, 1.0]],
        )
        assert keys.tolist() == [1, 2, 3]
        assert values.tolist() == [5.0, 3.0, 6.0]

    def test_key_class_spanning_all_procs(self):
        keys, values, _ = run_combine(
            [[7], [7], [7], [7]],
            [[1.0], [2.0], [3.0], [4.0]],
        )
        assert keys.tolist() == [7]
        assert values.tolist() == [10.0]

    def test_max_operator(self):
        keys, values, _ = run_combine(
            [[1, 2], [1, 2]],
            [[3.0, 9.0], [7.0, 1.0]],
            op=max,
        )
        assert keys.tolist() == [1, 2]
        assert values.tolist() == [7.0, 9.0]

    def test_min_operator(self):
        keys, values, _ = run_combine(
            [[5, 5, 5], [5]],
            [[3.0, 9.0, 4.0], [1.0]],
            op=min,
        )
        assert values.tolist() == [1.0]

    def test_empty_rank(self):
        keys, values, _ = run_combine(
            [[], [4, 4], []],
            [[], [1.0, 2.0], []],
        )
        assert keys.tolist() == [4]
        assert values.tolist() == [3.0]

    def test_all_empty(self):
        keys, values, _ = run_combine([[], []], [[], []])
        assert keys.size == 0

    def test_single_proc(self):
        keys, values, _ = run_combine([[2, 1, 2]], [[1.0, 5.0, 3.0]])
        assert keys.tolist() == [1, 2]
        assert values.tolist() == [5.0, 4.0]

    def test_constant_supersteps(self):
        rng = np.random.default_rng(1)
        chunks = [rng.integers(0, 50, 200).tolist() for _ in range(6)]
        vals = [np.ones(200).tolist() for _ in range(6)]
        _, _, res = run_combine(chunks, vals)
        assert res.report.supersteps <= 5

    def test_misaligned_rejected(self):
        def prog(ctx):
            out = yield from combine_by_key(
                ctx, ctx.comm, np.array([1, 2]), np.array([1.0])
            )
            return out

        with pytest.raises(ValueError):
            run_spmd(prog, 1)

    @given(st.lists(
        st.lists(st.tuples(st.integers(min_value=0, max_value=20),
                           st.integers(min_value=1, max_value=9)),
                 max_size=20),
        min_size=1, max_size=4,
    ))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_fold(self, proc_pairs):
        expected: dict[int, float] = {}
        for pairs in proc_pairs:
            for k, v in pairs:
                expected[k] = expected.get(k, 0.0) + v
        chunks = [[k for k, _ in pairs] for pairs in proc_pairs]
        vals = [[float(v) for _, v in pairs] for pairs in proc_pairs]
        keys, values, _ = run_combine(chunks, vals)
        got = dict(zip(keys.tolist(), values.tolist()))
        assert got == expected
