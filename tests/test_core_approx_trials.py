"""Tests for the approximate minimum cut (§3.3) and trial-count math."""

import math

import numpy as np
import pytest

from repro.core import approx_minimum_cut, num_trials, eager_survival_probability
from repro.core.approx_mincut import _keep_probability
from repro.core.trials import (
    achieved_success_probability,
    recursive_success_probability,
)
from repro.graph import (
    EdgeList,
    complete_graph,
    erdos_renyi,
    two_cliques_bridge,
    verification_suite,
)
from repro.graph.validate import networkx_components, networkx_mincut
from repro.rng import philox_stream


class TestKeepProbability:
    def test_unit_weight(self):
        assert _keep_probability(np.array([1.0]), 1)[0] == pytest.approx(0.5)
        assert _keep_probability(np.array([1.0]), 3)[0] == pytest.approx(1 / 8)

    def test_heavy_edge_kept(self):
        # weight-100 edge at level 1 survives essentially always
        assert _keep_probability(np.array([100.0]), 1)[0] > 0.999999

    def test_monotone_in_level(self):
        w = np.array([5.0])
        ps = [_keep_probability(w, i)[0] for i in range(1, 10)]
        assert all(a > b for a, b in zip(ps, ps[1:]))

    def test_monotone_in_weight(self):
        p = _keep_probability(np.array([1.0, 2.0, 10.0]), 4)
        assert p[0] < p[1] < p[2]

    def test_numerically_stable_at_deep_levels(self):
        p = _keep_probability(np.array([1.0]), 50)
        assert 0 < p[0] < 1e-10


class TestApproxMinCut:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_approximation_ratio_bound(self, p):
        """Artifact observed ratios below 11; we allow the same slack both ways."""
        for case in verification_suite():
            if case.mincut is None:
                continue
            r = approx_minimum_cut(case.graph, p=p, seed=21)
            ratio = r.estimate / case.mincut
            bound = 11 * max(1.0, math.log2(case.graph.n))
            assert 1 / bound <= ratio <= bound, (case.name, ratio)

    def test_witness_value_exact_on_input(self):
        g = erdos_renyi(50, 300, philox_stream(80), weighted=True)
        r = approx_minimum_cut(g, p=3, seed=22)
        if r.witness_side is not None:
            assert g.cut_value(r.witness_side) == pytest.approx(r.witness_value)
            assert r.witness_value >= networkx_mincut(g) - 1e-9

    def test_disconnected_returns_zero(self):
        g = EdgeList.from_pairs(6, [(0, 1), (1, 2), (3, 4)])
        r = approx_minimum_cut(g, p=2, seed=23)
        assert r.estimate == 0.0
        assert g.cut_value(r.witness_side) == 0.0

    def test_pipelined_matches_ratio_bound(self):
        g = two_cliques_bridge(6, bridge_weight=2.0)
        r = approx_minimum_cut(g, p=3, seed=24, pipelined=True)
        assert 2.0 / 16 <= r.estimate <= 2.0 * 16

    def test_pipelined_constant_supersteps(self):
        """The pipelined schedule must not grow with the cut value."""
        small = two_cliques_bridge(6, bridge_weight=1.0)
        big = two_cliques_bridge(6, bridge_weight=64.0)
        s_small = approx_minimum_cut(small, p=2, seed=25, pipelined=True)
        s_big = approx_minimum_cut(big, p=2, seed=25, pipelined=True)
        # both answered by one CC call over the union
        assert abs(s_big.report.supersteps - s_small.report.supersteps) <= 16

    def test_staged_stops_early_for_small_cuts(self):
        """Staged supersteps grow with log(mu), so a tiny cut stops early."""
        small_cut = two_cliques_bridge(8, bridge_weight=1.0)
        r = approx_minimum_cut(small_cut, p=2, seed=26)
        assert r.estimate <= 8.0

    def test_deterministic(self):
        g = erdos_renyi(40, 200, philox_stream(81))
        a = approx_minimum_cut(g, p=3, seed=27)
        b = approx_minimum_cut(g, p=3, seed=27)
        assert a.estimate == b.estimate

    def test_trials_per_level_override(self):
        g = complete_graph(10)
        r = approx_minimum_cut(g, p=2, seed=28, trials_per_level=2)
        assert r.estimate > 0

    def test_estimate_scales_with_cut(self):
        """Bigger min cut -> larger (or equal) estimate, statistically."""
        thin = two_cliques_bridge(10, bridge_weight=1.0)
        fat = two_cliques_bridge(10, bridge_weight=32.0)
        e_thin = np.median([
            approx_minimum_cut(thin, p=2, seed=s).estimate for s in range(5)
        ])
        e_fat = np.median([
            approx_minimum_cut(fat, p=2, seed=s).estimate for s in range(5)
        ])
        assert e_fat > e_thin

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError):
            approx_minimum_cut(EdgeList.empty(1), p=1, seed=0)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            approx_minimum_cut(EdgeList.empty(3), p=1, seed=0)


class TestBackends:
    """The same entry point on each execution backend (smoke-level)."""

    def test_ratio_bound_by_backend(self, backend):
        g = two_cliques_bridge(6, bridge_weight=2.0)
        r = approx_minimum_cut(g, p=2, seed=29, backend=backend)
        assert 2.0 / 16 <= r.estimate <= 2.0 * 16

    def test_backends_agree_exactly(self, backend):
        g = erdos_renyi(60, 300, philox_stream(82), weighted=True)
        ref = approx_minimum_cut(g, p=3, seed=30)  # sim oracle
        res = approx_minimum_cut(g, p=3, seed=30, backend=backend)
        assert res.estimate == ref.estimate
        assert res.witness_value == ref.witness_value
        assert res.report == ref.report


class TestTrialMath:
    def test_survival_probability_formula(self):
        assert eager_survival_probability(10, 10) == 1.0
        assert eager_survival_probability(10, 12) == 1.0
        assert eager_survival_probability(4, 2) == pytest.approx(2 / 12)

    def test_survival_validation(self):
        with pytest.raises(ValueError):
            eager_survival_probability(1, 2)
        with pytest.raises(ValueError):
            eager_survival_probability(5, 1)

    def test_recursive_success_probability(self):
        assert recursive_success_probability(2) == 1.0
        assert 0 < recursive_success_probability(10 ** 6) < 0.06

    def test_num_trials_monotone_in_density(self):
        """Denser graphs need fewer trials: t = Theta(n^2/m log^2 n)."""
        sparse = num_trials(1000, 2000)
        dense = num_trials(1000, 100_000)
        assert dense < sparse

    def test_num_trials_monotone_in_prob(self):
        assert num_trials(100, 500, success_prob=0.99) > \
            num_trials(100, 500, success_prob=0.5)

    def test_num_trials_scale(self):
        full = num_trials(100, 500)
        assert num_trials(100, 500, scale=0.1) <= max(1, full // 5)

    def test_num_trials_at_least_one(self):
        assert num_trials(4, 6, scale=1e-9) == 1

    def test_num_trials_validation(self):
        with pytest.raises(ValueError):
            num_trials(10, 20, success_prob=1.0)
        with pytest.raises(ValueError):
            num_trials(10, 20, scale=0)
        with pytest.raises(ValueError):
            num_trials(10, 0)

    @pytest.mark.parametrize("prob", [1.0, 0.0, 1.5, -0.1])
    def test_num_trials_out_of_range_prob_message(self, prob):
        with pytest.raises(ValueError, match="strictly between 0 and 1"):
            num_trials(10, 20, success_prob=prob)

    def test_num_trials_prob_one_explains_why(self):
        """p=1 would need infinitely many Monte-Carlo trials; say so."""
        with pytest.raises(ValueError, match="infinitely many"):
            num_trials(10, 20, success_prob=1.0)

    @pytest.mark.parametrize("scale", [0.0, -1.0, math.nan, math.inf])
    def test_num_trials_bad_scale_rejected(self, scale):
        with pytest.raises(ValueError, match="scale"):
            num_trials(10, 20, scale=scale)

    def test_num_trials_nan_prob_rejected(self):
        with pytest.raises(ValueError):
            num_trials(10, 20, success_prob=math.nan)


class TestAchievedSuccessProbability:
    def test_zero_completed_is_zero(self):
        assert achieved_success_probability(100, 500, 0) == 0.0

    def test_full_budget_meets_request(self):
        for prob in (0.5, 0.9, 0.99):
            planned = num_trials(100, 500, success_prob=prob)
            achieved = achieved_success_probability(100, 500, planned)
            assert achieved >= prob

    def test_monotone_in_completed(self):
        probs = [achieved_success_probability(100, 500, k)
                 for k in range(0, 40, 5)]
        assert probs == sorted(probs)
        assert all(0.0 <= q < 1.0 for q in probs)

    def test_partial_budget_falls_short(self):
        planned = num_trials(100, 500, success_prob=0.9)
        partial = achieved_success_probability(100, 500, planned // 2)
        assert partial < 0.9

    def test_negative_completed_rejected(self):
        with pytest.raises(ValueError, match="completed"):
            achieved_success_probability(100, 500, -1)

    def test_edgeless_graph_rejected(self):
        with pytest.raises(ValueError):
            achieved_success_probability(100, 0, 1)
