"""Tests for the memory-tracker instrumentation layer."""

import numpy as np
import pytest

from repro.cache import AnalyticTracker, CacheParams, LRUTracker, NullTracker


class TestNullTracker:
    def test_everything_free(self):
        t = NullTracker()
        t.alloc("a", 100)
        t.touch("a", np.arange(10))
        t.scan("a")
        t.ops(50)
        assert t.miss_count == 0
        assert t.op_count == 0
        assert t.instructions_per_miss() == float("inf")


class TestLRUTracker:
    def make(self, M=256, B=8):
        return LRUTracker(M=M, B=B)

    def test_scan_counts_blocks(self):
        t = self.make()
        t.alloc("a", 64)
        t.scan("a")
        assert t.miss_count == 8

    def test_touch_random(self):
        t = self.make(M=64, B=8)
        t.alloc("a", 1000)
        idx = np.arange(0, 1000, 8)  # one per block
        t.touch("a", idx)
        assert t.miss_count == 125 - 0 or t.miss_count > 100  # mostly misses

    def test_arrays_do_not_share_blocks(self):
        t = self.make()
        t.alloc("a", 1)
        t.alloc("b", 1)
        t.touch("a", 0)
        t.touch("b", 0)
        assert t.miss_count == 2

    def test_realloc_grows(self):
        t = self.make()
        t.alloc("a", 4)
        t.alloc("a", 100)  # must re-register bigger
        t.scan("a")  # full 100 elements
        assert t.miss_count >= 100 // 8

    def test_realloc_smaller_is_noop(self):
        t = self.make()
        t.alloc("a", 100)
        t.alloc("a", 4)
        t.scan("a")  # still 100 elements
        assert t.miss_count >= 100 // 8

    def test_out_of_bounds_touch(self):
        t = self.make()
        t.alloc("a", 10)
        with pytest.raises(IndexError):
            t.touch("a", 10)

    def test_out_of_bounds_scan(self):
        t = self.make()
        t.alloc("a", 10)
        with pytest.raises(IndexError):
            t.scan("a", 5, 6)

    def test_unknown_array(self):
        t = self.make()
        with pytest.raises(KeyError):
            t.touch("ghost", 0)

    def test_ops_counted(self):
        t = self.make()
        t.ops(3)
        t.ops(4)
        assert t.op_count == 7

    def test_ipm(self):
        t = self.make()
        t.alloc("a", 64)
        t.scan("a")
        t.ops(800)
        assert t.instructions_per_miss() == pytest.approx(800 / t.miss_count)

    def test_multiword_elements(self):
        t = self.make(M=256, B=8)
        t.alloc("a", 10, words_per_elem=8)  # one element per block
        t.touch("a", np.arange(10))
        assert t.miss_count == 10

    def test_invalid_alloc(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.alloc("a", -1)
        with pytest.raises(ValueError):
            t.alloc("a", 5, words_per_elem=0)


class TestAnalyticTracker:
    def test_scan_formula(self):
        t = AnalyticTracker(CacheParams(M=1024, B=8))
        t.alloc("a", 80)
        t.scan("a")
        assert t.miss_count == int(CacheParams(M=1024, B=8).scan(80))

    def test_touch_small_working_set(self):
        params = CacheParams(M=1024, B=8)
        t = AnalyticTracker(params)
        t.alloc("a", 100)
        t.touch("a", np.arange(5000) % 100)
        # fits in cache: compulsory misses only
        assert t.miss_count == int(params.scan(100))

    def test_touch_large_working_set(self):
        t = AnalyticTracker(CacheParams(M=1024, B=8))
        t.alloc("a", 100_000)
        t.touch("a", np.arange(500))
        assert t.miss_count == 500

    def test_ops(self):
        t = AnalyticTracker()
        t.ops(10)
        assert t.op_count == 10

    def test_partial_scan(self):
        params = CacheParams(M=1024, B=8)
        t = AnalyticTracker(params)
        t.alloc("a", 100)
        t.scan("a", 10, 40)
        assert t.miss_count == int(params.scan(40))
