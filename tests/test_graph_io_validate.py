"""Tests for graph IO and the ground-truth oracles."""

import numpy as np
import pytest

from repro.graph import EdgeList, complete_graph, erdos_renyi, read_edgelist, write_edgelist
from repro.graph.validate import brute_force_mincut, networkx_components, networkx_mincut
from repro.rng import philox_stream


class TestIO:
    def test_roundtrip(self, tmp_path, rng):
        g = erdos_renyi(40, 80, rng, weighted=True)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        h = read_edgelist(path)
        assert h == g

    def test_roundtrip_empty(self, tmp_path):
        g = EdgeList.empty(7)
        path = tmp_path / "empty.txt"
        write_edgelist(g, path)
        h = read_edgelist(path)
        assert h.n == 7 and h.m == 0

    def test_header_comment_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n# another\n2 1\n0 1 3.5\n")
        g = read_edgelist(path)
        assert g.n == 2 and g.m == 1 and g.w[0] == 3.5

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# only comments\n")
        with pytest.raises(ValueError):
            read_edgelist(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            read_edgelist(path)

    def test_wrong_edge_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 2\n0 1 1.0\n")
        with pytest.raises(ValueError):
            read_edgelist(path)


class TestOracles:
    def test_brute_force_triangle(self):
        assert brute_force_mincut(complete_graph(3)) == 2.0

    def test_brute_force_disconnected(self):
        g = EdgeList.from_pairs(4, [(0, 1), (2, 3)])
        assert brute_force_mincut(g) == 0.0

    def test_brute_force_matches_networkx(self, rng):
        for seed in range(5):
            g = erdos_renyi(9, 20, philox_stream(seed), weighted=True)
            if networkx_components(g) != 1:
                continue
            assert brute_force_mincut(g) == networkx_mincut(g)

    def test_brute_force_size_guard(self):
        with pytest.raises(ValueError):
            brute_force_mincut(complete_graph(21))
        with pytest.raises(ValueError):
            brute_force_mincut(EdgeList.empty(1))

    def test_networkx_components_counts_isolated(self):
        g = EdgeList.from_pairs(5, [(0, 1)])
        assert networkx_components(g) == 4
