"""Tests for payload accounting, communicator views, and the machine model."""

import numpy as np
import pytest

from repro.bsp import CountersReport, MachineModel, fit_model
from repro.bsp.comm import Communicator, Group, payload_words
from repro.bsp.counters import ProcCounters


class TestPayloadWords:
    def test_none_is_free(self):
        assert payload_words(None) == 0

    def test_numpy_counts_elements(self):
        assert payload_words(np.zeros((3, 4))) == 12

    def test_scalar_is_one(self):
        assert payload_words(5) == 1
        assert payload_words(2.5) == 1
        assert payload_words("x") == 1

    def test_containers_sum(self):
        assert payload_words([np.zeros(2), 1, None]) == 3
        assert payload_words((np.zeros(5),)) == 5

    def test_dict(self):
        assert payload_words({"a": np.zeros(4)}) == 5

    def test_custom_protocol(self):
        class Weighted:
            def __bsp_words__(self):
                return 42

        assert payload_words(Weighted()) == 42


class TestCommunicatorView:
    def test_size_and_rank(self):
        g = Group(1, (4, 7, 9))
        c = Communicator(g, 1)
        assert c.size == 3
        assert c.rank == 1

    def test_invalid_local_rank(self):
        g = Group(1, (0, 1))
        with pytest.raises(ValueError):
            Communicator(g, 2)

    def test_invalid_root(self):
        g = Group(1, (0, 1))
        c = Communicator(g, 0)
        with pytest.raises(ValueError):
            c._op("bcast", None, root=5)


class TestProcCounters:
    def test_volume_is_max_direction(self):
        c = ProcCounters()
        c.charge_comm(sent=10, recv=3)
        assert c.volume == 10
        c.charge_comm(sent=0, recv=20)
        assert c.volume == 23

    def test_negative_rejected(self):
        c = ProcCounters()
        with pytest.raises(ValueError):
            c.charge(ops=-1)
        with pytest.raises(ValueError):
            c.charge_comm(sent=-1, recv=0)

    def test_report_aggregation(self):
        a = ProcCounters()
        a.charge(ops=100, misses=5)
        b = ProcCounters()
        b.charge(ops=50, misses=9)
        rep = CountersReport.from_procs([a, b])
        assert rep.p == 2
        assert rep.computation == 100
        assert rep.misses == 9
        assert rep.total_ops == 150

    def test_report_needs_procs(self):
        with pytest.raises(ValueError):
            CountersReport.from_procs([])

    def test_ipm(self):
        a = ProcCounters()
        a.charge(ops=1000, misses=10)
        rep = CountersReport.from_procs([a])
        assert rep.instructions_per_miss() == 100
        b = ProcCounters()
        b.charge(ops=10)
        assert CountersReport.from_procs([b]).instructions_per_miss() == float("inf")


def make_report(p=4, comp=1e6, vol=1e4, steps=10, misses=1e3, wait=0.0):
    return CountersReport(
        p=p, computation=comp, volume=vol, supersteps=steps, misses=misses,
        wait=wait, total_ops=comp * p, total_volume=vol * p,
    )


class TestMachineModel:
    def test_predict_positive(self):
        t = MachineModel().predict(make_report())
        assert t.app_s > 0 and t.mpi_s > 0
        assert t.total_s == t.app_s + t.mpi_s

    def test_more_volume_more_mpi(self):
        m = MachineModel()
        t1 = m.predict(make_report(vol=1e4))
        t2 = m.predict(make_report(vol=1e6))
        assert t2.mpi_s > t1.mpi_s
        assert t2.app_s == t1.app_s

    def test_wait_goes_to_mpi(self):
        m = MachineModel()
        t1 = m.predict(make_report(wait=0))
        t2 = m.predict(make_report(wait=1e6))
        assert t2.mpi_s > t1.mpi_s

    def test_mpi_fraction_bounds(self):
        t = MachineModel().predict(make_report())
        assert 0 < t.mpi_fraction < 1

    def test_fit_recovers_constants(self):
        true = MachineModel(op_s=2e-9, g_s=5e-9, L_s=2e-5, overhead_s=1e-4)
        reports = [
            make_report(p=p, comp=c, vol=v, steps=s)
            for p, c, v, s in [
                (2, 1e8, 1e5, 10), (4, 5e7, 2e5, 20), (8, 2e7, 4e5, 40),
                (16, 1e7, 8e5, 80), (32, 5e6, 1.6e6, 160), (64, 1e9, 10., 5),
            ]
        ]
        measured = [true.predict(r).total_s for r in reports]
        fitted = fit_model(reports, measured)
        for r in reports:
            assert fitted.predict(r).total_s == pytest.approx(
                true.predict(r).total_s, rel=0.15
            )

    def test_fit_validates_input(self):
        with pytest.raises(ValueError):
            fit_model([], [])
        with pytest.raises(ValueError):
            fit_model([make_report()], [1.0, 2.0])
