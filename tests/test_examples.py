"""Smoke tests: every example script runs to completion and self-verifies.

The examples assert their own invariants internally (witness checks, cross
checks against baselines, clustering recovery), so a clean exit is a real
end-to-end test of the public API.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=420,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "connected components:" in out
        assert "exact minimum cut:" in out
        assert "witness verified" in out

    def test_network_reliability(self):
        out = run_example("network_reliability.py")
        assert "global minimum cut" in out
        assert "witness verified" in out

    def test_image_segmentation(self):
        out = run_example("image_segmentation.py")
        assert "segments" in out
        assert "BFS baseline agrees" in out

    def test_graph_clustering(self):
        out = run_example("graph_clustering.py")
        assert "recovered" in out
        assert "planted structure" in out

    def test_artifact_workflow(self):
        out = run_example("artifact_workflow.py")
        assert "profile records" in out
        assert "aggregated datapoints" in out
