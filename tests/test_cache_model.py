"""Tests for the analytic cache-oblivious cost model."""

import pytest

from repro.cache import CacheParams


class TestCacheParams:
    def test_tall_cache_enforced(self):
        with pytest.raises(ValueError):
            CacheParams(M=63, B=8)
        CacheParams(M=64, B=8)  # boundary OK

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            CacheParams(M=64, B=0)

    def test_scan_linear_in_n(self):
        c = CacheParams(M=1024, B=8)
        assert c.scan(0) == 0
        assert c.scan(8) == 2  # ceil(8/8) + 1
        assert c.scan(80) == 11

    def test_scan_partial_block(self):
        c = CacheParams(M=1024, B=8)
        assert c.scan(1) == 2  # one block + boundary

    def test_random_access_fits_in_cache(self):
        c = CacheParams(M=1024, B=8)
        # small working set: only compulsory misses
        assert c.random_access(1000, working_set=100) == c.scan(100)

    def test_random_access_thrashes(self):
        c = CacheParams(M=1024, B=8)
        assert c.random_access(500, working_set=10_000) == 500

    def test_random_access_default_working_set(self):
        c = CacheParams(M=1024, B=8)
        assert c.random_access(2000) == 2000  # ws defaults to n > M

    def test_sort_superlinear(self):
        c = CacheParams(M=1024, B=8)
        assert c.sort(1) == 0
        assert c.sort(10_000) >= 10_000 / 8

    def test_permute_is_min(self):
        c = CacheParams(M=1024, B=8)
        n = 100_000
        assert c.permute(n) == min(c.random_access(n), c.sort(n))

    def test_transpose(self):
        c = CacheParams(M=1024, B=8)
        assert c.transpose(0) == 0
        assert c.transpose(32) == c.scan(32 * 32)

    def test_matrix_scan(self):
        c = CacheParams(M=1024, B=8)
        assert c.matrix_scan(4, 8) == c.scan(32)

    def test_defaults_model_llc(self):
        c = CacheParams()
        assert c.M * 8 == 45 * 1024 * 1024  # 45 MiB in bytes
        assert c.B == 8
