"""Cost counters must be *unchanged* by vectorization.

The BSP cost model charges analytically from input sizes
(``ctx.charge_scan(m)``, ``ctx.charge_random(m)``, ...), never from the
Python loop structure that produces the values.  Swapping a scalar loop for
a vectorized kernel therefore may not move a single counter.  These tests
enforce that end to end: run each algorithm with the fast kernels, then
monkeypatch the scalar references into the same call sites and re-run —
every field of the :class:`~repro.bsp.counters.CountersReport` (and the
result itself) must match exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

import repro.baselines.cc_async as cc_async_mod
import repro.core.components as components_mod
import repro.core.mincut as mincut_mod
from repro.baselines import galois_cc_parallel
from repro.cache.traced import AnalyticTracker
from repro.core import connected_components, minimum_cut
from repro.graph import erdos_renyi
from repro.kernels import (
    cc_labels,
    cc_roots,
    scalar_prefix_select,
)
from repro.kernels.unionfind import _earliest_forest_scalar
from repro.rng import philox_stream


def _report_fields(report):
    return dataclasses.asdict(report)


def _assert_reports_equal(a, b):
    fa, fb = _report_fields(a), _report_fields(b)
    assert fa == fb, {k: (fa[k], fb[k]) for k in fa if fa[k] != fb[k]}


def test_mincut_counters_unchanged_by_prefix_select_kernel(monkeypatch):
    g = erdos_renyi(96, 420, philox_stream(21), weighted=True)
    fast = minimum_cut(g, p=4, seed=5, trials=4)

    def slow_prefix_select(n, su, sv, t, **_kw):
        return scalar_prefix_select(n, su, sv, t)

    monkeypatch.setattr(mincut_mod, "prefix_select", slow_prefix_select)
    slow = minimum_cut(g, p=4, seed=5, trials=4)

    assert fast.value == slow.value
    np.testing.assert_array_equal(fast.side, slow.side)
    _assert_reports_equal(fast.report, slow.report)


def test_cc_counters_unchanged_by_components_kernel(monkeypatch):
    g = erdos_renyi(512, 1200, philox_stream(22))
    fast = connected_components(g, p=4, seed=6)

    def slow_components(n, u, v):
        return cc_labels(n, u, v, backend="scalar")

    monkeypatch.setattr(components_mod, "components_from_edges",
                        slow_components)
    slow = connected_components(g, p=4, seed=6)

    assert fast.n_components == slow.n_components
    np.testing.assert_array_equal(fast.labels, slow.labels)
    _assert_reports_equal(fast.report, slow.report)


def test_galois_counters_unchanged_by_forest_kernels(monkeypatch):
    g = erdos_renyi(512, 1200, philox_stream(23))
    fl, fc, frep, _ = galois_cc_parallel(g, p=4, seed=7)

    monkeypatch.setattr(
        cc_async_mod, "earliest_forest",
        lambda n, u, v: _earliest_forest_scalar(n, u, v))
    monkeypatch.setattr(
        cc_async_mod, "cc_roots",
        lambda n, u, v: cc_roots(n, u, v, backend="scalar"))
    sl, sc, srep, _ = galois_cc_parallel(g, p=4, seed=7)

    assert fc == sc
    np.testing.assert_array_equal(fl, sl)
    _assert_reports_equal(frep, srep)


def test_sequential_tracker_counts_unchanged_by_flatten_kernel(monkeypatch):
    """The traced union-find charges its final flatten as a flat scan plus
    ``2n`` ops regardless of how the flatten is computed; replacing the
    vectorized ``flatten_parents`` with the original scalar loop must leave
    labels and every tracked total exactly as they were."""
    from repro.core.components import cc_sequential

    g = erdos_renyi(200, 380, philox_stream(24))
    mem_a = AnalyticTracker()
    labels_a, count_a = cc_sequential(g, seed=9, mem=mem_a)

    def scalar_flatten(parent):
        parent = np.asarray(parent, dtype=np.int64).copy()
        for x in range(parent.size):
            r = x
            while parent[r] != r:
                r = parent[r]
            parent[x] = r
        return parent

    monkeypatch.setattr(components_mod, "flatten_parents", scalar_flatten)
    mem_b = AnalyticTracker()
    labels_b, count_b = cc_sequential(g, seed=9, mem=mem_b)

    assert count_a == count_b
    np.testing.assert_array_equal(labels_a, labels_b)
    assert mem_a.op_count == mem_b.op_count
    assert mem_a.miss_count == mem_b.miss_count
