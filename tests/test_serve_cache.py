"""Content fingerprints, the bounded LRU store, and the serve graph cache."""

import numpy as np
import pytest

from repro.cache.store import BoundedLRU
from repro.graph import (
    content_fingerprint,
    erdos_renyi,
    read_edgelist,
    write_edgelist,
)
from repro.rng import philox_stream
from repro.sched.ledger import TrialLedger
from repro.serve.cache import FingerprintMismatch, GraphCache


@pytest.fixture
def g():
    return erdos_renyi(50, 200, philox_stream(3), weighted=True)


# -- content_fingerprint ------------------------------------------------------


def test_fingerprint_deterministic(g):
    assert content_fingerprint(g) == content_fingerprint(g)


def test_fingerprint_sensitive_to_content(g):
    fp = content_fingerprint(g)
    h = erdos_renyi(50, 200, philox_stream(4), weighted=True)
    assert content_fingerprint(h) != fp
    # a single weight change flips it
    g2 = type(g)(g.n, g.u.copy(), g.v.copy(), g.w.copy())
    g2.w[0] += 1.0
    assert content_fingerprint(g2) != fp


def test_fingerprint_survives_io_roundtrip(g, tmp_path):
    path = tmp_path / "g.edges"
    write_edgelist(g, path)
    assert content_fingerprint(read_edgelist(path)) == content_fingerprint(g)


# -- ledger graph_fp ----------------------------------------------------------


def test_ledger_graph_fp_roundtrip(g, tmp_path):
    fp = content_fingerprint(g)
    ledger = TrialLedger(4, g.n, g.m, 7, graph_fp=fp)
    path = str(tmp_path / "ledger.jsonl")
    ledger.save(path)
    loaded = TrialLedger.load(path)
    assert loaded.graph_fp == fp
    assert loaded.matches(trials=4, n=g.n, m=g.m, seed=7, graph_fp=fp)
    assert not loaded.matches(trials=4, n=g.n, m=g.m, seed=7,
                              graph_fp="0" * 64)
    # fingerprint-less comparison stays backward compatible
    assert loaded.matches(trials=4, n=g.n, m=g.m, seed=7)


def test_scheduler_resume_rejects_different_graph(g, tmp_path):
    from repro.sched import TrialScheduler

    ck = str(tmp_path / "ck.jsonl")
    sched = TrialScheduler(wave_size=4, checkpoint=ck)
    run = sched.begin(g, 2, backend="sim", seed=5, trial_scale=0.2)
    run.step()
    other = erdos_renyi(50, 200, philox_stream(9), weighted=True)
    with pytest.raises(ValueError, match="different"):
        sched.begin(other, 2, backend="sim", seed=5, trial_scale=0.2,
                    resume=True)
    # same bytes resume fine
    resumed = sched.begin(g, 2, backend="sim", seed=5, trial_scale=0.2,
                          resume=True)
    while resumed.step():
        pass
    res = sched.finish(resumed)
    assert res.ledger.fingerprint() == sched.run(
        g, 2, backend="sim", seed=5, trial_scale=0.2).ledger.fingerprint()


# -- BoundedLRU ---------------------------------------------------------------


def test_lru_eviction_order():
    lru = BoundedLRU(3)
    for k in "abc":
        lru.put(k, k)
    lru.get("a")          # refresh: b is now LRU
    lru.put("d", "d")
    assert lru.get("b") is None
    assert lru.get("a") == "a" and lru.get("d") == "d"
    assert lru.stats()["evictions"] == 1


def test_lru_weight_bound():
    lru = BoundedLRU(10.0)
    lru.put("a", 1, weight=6.0)
    lru.put("b", 2, weight=6.0)   # a must go
    assert lru.get("a") is None and lru.get("b") == 2
    assert lru.weight == 6.0
    with pytest.raises(ValueError):
        lru.put("huge", 3, weight=11.0)


def test_lru_get_or_load():
    lru = BoundedLRU(10)
    calls = []

    def loader():
        calls.append(1)
        return "value"

    assert lru.get_or_load("k", loader) == "value"
    assert lru.get_or_load("k", loader) == "value"
    assert len(calls) == 1


# -- GraphCache ---------------------------------------------------------------


def test_graph_cache_stat_fast_path(g, tmp_path):
    path = str(tmp_path / "g.edges")
    write_edgelist(g, path)
    cache = GraphCache()
    g1, fp1 = cache.load(path)
    g2, fp2 = cache.load(path)
    assert g1 is g2 and fp1 == fp2    # same hot object, no re-read


def test_graph_cache_detects_file_change(g, tmp_path):
    path = str(tmp_path / "g.edges")
    write_edgelist(g, path)
    cache = GraphCache()
    _, fp1 = cache.load(path)
    other = erdos_renyi(50, 200, philox_stream(9), weighted=True)
    write_edgelist(other, path)
    _, fp2 = cache.load(path)
    assert fp2 != fp1
    assert fp2 == content_fingerprint(other)


def test_graph_cache_fingerprint_mismatch(g, tmp_path):
    path = str(tmp_path / "g.edges")
    write_edgelist(g, path)
    cache = GraphCache()
    with pytest.raises(FingerprintMismatch):
        cache.load(path, expected_fp="f" * 64)
    # pinning the true fingerprint succeeds, cold and warm
    fp = content_fingerprint(g)
    cache.load(path, expected_fp=fp)
    cache.load(path, expected_fp=fp)
    with pytest.raises(FingerprintMismatch):
        cache.load(path, expected_fp="f" * 64)   # warm path validates too


def test_graph_cache_eviction_and_reload(g, tmp_path):
    path = str(tmp_path / "g.edges")
    write_edgelist(g, path)
    cache = GraphCache(capacity_edges=g.m)   # room for exactly one graph
    g1, fp = cache.load(path)
    other = erdos_renyi(80, 150, philox_stream(9), weighted=True)
    opath = str(tmp_path / "o.edges")
    write_edgelist(other, opath)
    cache.load(opath)                        # evicts g
    assert cache.get_graph(fp) is None
    g2, fp2 = cache.load(path)               # transparent reload
    assert fp2 == fp and np.array_equal(g2.w, g1.w)


def test_graph_cache_serves_oversize_graph_uncached(g, tmp_path):
    path = str(tmp_path / "g.edges")
    write_edgelist(g, path)
    cache = GraphCache(capacity_edges=g.m - 1)   # graph cannot fit
    g1, fp = cache.load(path)
    assert fp == content_fingerprint(g)
    assert cache.get_graph(fp) is None           # not cached, but served


def test_graph_cache_plan_roundtrip(g):
    cache = GraphCache()
    fp = cache.put_graph(g)
    key = cache.plan_key(fp, seed=1, p=2, success_prob=0.9,
                         trial_scale=1.0, rounds=2, replicas=None)
    assert cache.get_plan(key) is None
    cache.put_plan(key, "plan")
    assert cache.get_plan(key) == "plan"
    assert key != cache.plan_key(fp, seed=2, p=2, success_prob=0.9,
                                 trial_scale=1.0, rounds=2, replicas=None)
