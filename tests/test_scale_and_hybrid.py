"""Simulator scalability (paper-scale processor counts) and hybrid CC."""

import operator

import numpy as np
import pytest

from repro.bsp import run_spmd
from repro.core import approx_minimum_cut, connected_components
from repro.graph import erdos_renyi, verification_suite
from repro.graph.validate import networkx_components
from repro.rng import philox_stream


class TestSimulatorScale:
    """The engine must handle the paper's processor counts (up to 1008+)."""

    def test_barrier_at_1008_procs(self):
        def prog(ctx):
            yield from ctx.comm.barrier()
            total = yield from ctx.comm.allreduce(1, op=operator.add)
            return total

        res = run_spmd(prog, 1008)
        assert res.values[0] == 1008
        assert res.report.p == 1008

    def test_split_into_many_groups(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(ctx.rank % 36)
            s = yield from sub.allreduce(1, op=operator.add)
            return sub.size, s

        res = run_spmd(prog, 288)
        assert all(v == (8, 8) for v in res.values)

    def test_cc_at_144_procs(self):
        g = erdos_renyi(2_000, 8_000, philox_stream(70))
        res = connected_components(g, p=144, seed=1)
        assert res.n_components == networkx_components(g)
        # O(1) supersteps independent of the processor count
        small = connected_components(g, p=4, seed=1)
        assert res.report.supersteps <= small.report.supersteps + 8

    def test_appmc_at_72_procs(self):
        g = erdos_renyi(400, 3_000, philox_stream(71), weighted=True)
        res = approx_minimum_cut(g, p=72, seed=2, trials_per_level=3)
        assert res.estimate > 0

    def test_volume_bounded_in_p(self):
        g = erdos_renyi(1_000, 16_000, philox_stream(72))
        v4 = connected_components(g, p=4, seed=3).report.volume
        v16 = connected_components(g, p=16, seed=3).report.volume
        v64 = connected_components(g, p=64, seed=3).report.volume
        # The root's gathered sample dominates: volume is flat in p while
        # slices stay above the Chernoff threshold (p=4 vs p=16) ...
        assert v16 <= v4 * 1.5
        # ... and bounded by O(m) even once tiny slices fall below the
        # threshold and contribute themselves wholesale (p=64).
        assert v64 <= 2.2 * (2 * g.m)


class TestHybridCC:
    @pytest.mark.parametrize("p", [1, 3, 6])
    def test_matches_truth(self, p):
        g = erdos_renyi(600, 900, philox_stream(73))
        truth = networkx_components(g)
        res = connected_components(g, p=p, seed=4, hybrid=True)
        assert res.n_components == truth
        assert (res.labels[g.u] == res.labels[g.v]).all()

    def test_verification_suite(self):
        for case in verification_suite():
            res = connected_components(case.graph, p=3, seed=5, hybrid=True)
            assert res.n_components == case.components, case.name

    def test_matches_pure_variant(self):
        g = erdos_renyi(300, 500, philox_stream(74))
        pure = connected_components(g, p=4, seed=6)
        hyb = connected_components(g, p=4, seed=6, hybrid=True)
        assert pure.n_components == hyb.n_components
        same_pure = pure.labels[g.u] == pure.labels[g.v]
        same_hyb = hyb.labels[g.u] == hyb.labels[g.v]
        assert (same_pure == same_hyb).all()

    def test_preconditioning_shrinks_hooking_instance(self):
        """The sparsified rounds must collapse the label space before the
        hooking algorithm runs, cutting its rounds vs running it raw."""
        from repro.baselines import pbgl_cc

        g = erdos_renyi(1_500, 6_000, philox_stream(75))
        hyb = connected_components(g, p=4, seed=7, hybrid=True)
        _, _, raw_report, _ = pbgl_cc(g, p=4, seed=7)
        assert hyb.report.supersteps < raw_report.supersteps

    def test_deterministic(self):
        g = erdos_renyi(200, 350, philox_stream(76))
        a = connected_components(g, p=3, seed=8, hybrid=True)
        b = connected_components(g, p=3, seed=8, hybrid=True)
        assert np.array_equal(a.labels, b.labels)
