"""The shared graph plane: publish/pin lifecycle, O(1) handles, parity.

Four layers of guarantees:

* **Registry mechanics** — publish is idempotent, handles pickle in O(1)
  regardless of m, pin counts gate unlinking, and attached views are
  zero-copy and read-only.
* **Bit-identity** — sim / mp(plane on) / mp(plane off) / warm produce
  identical results, counters and traces: the plane is transport, not
  semantics.
* **Lifetime** — the warm backend's retention window, the serve
  GraphCache's residency pins, and the per-run ``finally`` blocks leave
  zero ``/dev/shm`` segments after normal shutdown *and* after a worker
  crash mid-run.
* **Store plumbing** — BoundedLRU's ``on_evict`` fires for every
  departure (eviction, pop, clear) and never for same-key replacement.
"""

import glob
import pickle

import numpy as np
import pytest

from repro.cache.store import BoundedLRU
from repro.graph import EdgeList, erdos_renyi
from repro.graph import shm as plane
from repro.graph.fingerprint import cached_fingerprint, content_fingerprint
from repro.rng import philox_stream

from .conftest import require_mp


def shm_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{plane.SEGMENT_PREFIX}*")


@pytest.fixture(autouse=True)
def clean_plane():
    """Every test starts and ends with an empty plane."""
    plane.shutdown_plane()
    yield
    plane.shutdown_plane()
    assert shm_segments() == []


@pytest.fixture
def big_graph():
    """Comfortably above PLANE_MIN_BYTES (4000 edges * 24 bytes)."""
    return erdos_renyi(400, 4000, philox_stream(7), weighted=True)


# -- registry mechanics ------------------------------------------------------

def test_publish_idempotent_and_pin_gated(big_graph):
    h1 = plane.publish(big_graph)
    h2 = plane.publish(big_graph)
    assert h1 is h2
    assert len(shm_segments()) == 1

    plane.pin(h1.fingerprint)
    assert not plane.unpublish(h1.fingerprint)   # pinned: stays
    assert shm_segments()
    plane.unpin(h1.fingerprint)
    assert plane.unpublish(h1.fingerprint)       # last pin gone: unlinked
    assert shm_segments() == []


def test_handle_pickles_in_o1(big_graph):
    small = erdos_renyi(400, 4000, philox_stream(8), weighted=True)
    huge = erdos_renyi(2000, 40_000, philox_stream(8), weighted=True)
    hs = plane.publish(small)
    hh = plane.publish(huge)
    bs, bh = pickle.dumps(hs), pickle.dumps(hh)
    # O(1): 10x the edges adds at most a few bytes of integer width.
    assert abs(len(bh) - len(bs)) <= 16
    assert len(bh) < 400
    plane.shutdown_plane()


def test_publisher_resolves_to_original_object(big_graph):
    h = plane.publish(big_graph)
    assert h.graph() is big_graph


def test_views_are_zero_copy_and_read_only(big_graph):
    h = plane.publish(big_graph)
    seg = plane._REGISTRY[h.fingerprint].seg
    g2 = plane._views_from_buffer(h, seg.buf)
    assert np.array_equal(g2.u, big_graph.u)
    assert np.array_equal(g2.v, big_graph.v)
    assert np.array_equal(g2.w, big_graph.w)
    for a in (g2.u, g2.v, g2.w):
        assert not a.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        g2.u[0] = 99
    # zero-copy: the views' memory lives inside the segment buffer
    base = np.frombuffer(seg.buf, dtype=np.uint8)
    assert g2.u.__array_interface__["data"][0] >= \
        base.__array_interface__["data"][0]


def test_small_graphs_stay_inline(tiny_path):
    assert not plane.eligible(tiny_path)
    pins = []
    staged = plane.stage_plane((plane.plane_slices(tiny_path, 2), 4), pins)
    slices, n = staged
    assert pins == []
    assert isinstance(slices, list)          # resolved, not a handle
    assert n == 4
    assert shm_segments() == []


def test_plane_slices_marker_refuses_pickle(big_graph):
    with pytest.raises(TypeError):
        pickle.dumps(plane.plane_slices(big_graph, 4))


def test_stage_and_resolve_round_trip(big_graph):
    pins = []
    staged = plane.stage_plane(
        {"a": (plane.plane_slices(big_graph, 4), 1)}, pins)
    assert pins == [cached_fingerprint(big_graph)]
    marker = staged["a"][0]
    assert isinstance(marker, plane.SlicedHandle)
    wire = pickle.loads(pickle.dumps(marker))   # O(1) across the wire
    out = plane.resolve_plane({"a": (wire, 1)})
    got = out["a"][0]
    want = big_graph.slices(4)
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert np.array_equal(a.u, b.u) and np.array_equal(a.w, b.w)
    # repeat resolution returns the identical cached objects
    assert plane.resolve_plane(wire) is got or \
        plane.resolve_plane(wire)[0] is got[0]
    plane.release_pins(pins)
    assert shm_segments() == []


def test_cached_fingerprint_matches_and_memoizes(big_graph):
    fp = content_fingerprint(big_graph)
    assert cached_fingerprint(big_graph) == fp
    assert cached_fingerprint(big_graph) == fp  # memo hit, same value


# -- bit-identity across backends -------------------------------------------

def _canon(rr):
    return (rr.root_value, rr.report)


def test_sim_mp_warm_bit_identity(big_graph):
    require_mp()
    from repro.core.components import connected_components
    from repro.runtime.mp import MpBackend
    from repro.runtime.warm import WarmMpBackend

    ref = connected_components(big_graph, p=4, seed=3, backend="sim")
    for make in (lambda: MpBackend(graph_plane=True),
                 lambda: MpBackend(graph_plane=False),
                 lambda: WarmMpBackend(graph_plane=True)):
        be = make()
        try:
            res = be, connected_components(big_graph, p=4, seed=3, backend=be)
            r = res[1]
            assert r.n_components == ref.n_components
            assert np.array_equal(r.labels, ref.labels)
            assert r.report == ref.report
        finally:
            be.close()
    assert shm_segments() == []


def test_mp_input_bytes_reduction(big_graph):
    require_mp()
    from repro.core.mincut import minimum_cut
    from repro.runtime.mp import MpBackend

    inputs = {}
    values = {}
    for label, on in (("off", False), ("on", True)):
        be = MpBackend(graph_plane=on)
        r = minimum_cut(big_graph, p=4, seed=5, trials=4, backend=be)
        values[label] = r.value
        inputs[label] = \
            be.last_transport_stats["per_kind"]["input"]["pickle_bytes"]
    assert values["on"] == values["off"]
    assert inputs["off"] / inputs["on"] >= 5.0
    assert shm_segments() == []


def test_warm_retention_and_program_token(big_graph):
    require_mp()
    from repro.core.components import connected_components
    from repro.runtime.warm import WarmMpBackend

    be = WarmMpBackend(graph_plane=True)
    try:
        r1 = connected_components(big_graph, p=4, seed=3, backend=be)
        assert len(plane.published()) == 1      # retained between runs
        bytes1 = be.last_transport_stats["per_kind"]["input"]["pickle_bytes"]
        r2 = connected_components(big_graph, p=4, seed=3, backend=be)
        bytes2 = be.last_transport_stats["per_kind"]["input"]["pickle_bytes"]
        assert r1.n_components == r2.n_components
        assert r1.report == r2.report
        assert be.pool_spawns == 1              # pool survived both runs
        # repeat query ships no program body (token) and no arrays
        assert bytes2 <= bytes1
        assert bytes2 < 4096
    finally:
        be.close()
    assert plane.published() == {}
    assert shm_segments() == []


def test_warm_retention_window_evicts(big_graph):
    require_mp()
    from repro.core.components import connected_components
    from repro.runtime.warm import WarmMpBackend

    be = WarmMpBackend(graph_plane=True, plane_retain=1)
    try:
        g2 = erdos_renyi(400, 4000, philox_stream(11), weighted=True)
        connected_components(big_graph, p=2, seed=1, backend=be)
        connected_components(g2, p=2, seed=1, backend=be)
        assert len(plane.published()) == 1      # window of 1: first evicted
        assert list(plane.published()) == [cached_fingerprint(g2)]
    finally:
        be.close()
    assert shm_segments() == []


def test_worker_crash_leaks_no_segments(big_graph):
    require_mp()
    from repro.core.components import cc_program
    from repro.faults import FaultSpec
    from repro.runtime.errors import WorkerFailure
    from repro.runtime.mp import MpBackend

    be = MpBackend(graph_plane=True)
    with pytest.raises(WorkerFailure):
        be.run(cc_program, 2, seed=1,
               args=(plane.plane_slices(big_graph, 2), big_graph.n),
               faults=[FaultSpec("crash", rank=1, step=1)])
    assert plane.published() == {}              # run pin released on error
    assert shm_segments() == []


# -- epoch bumps (dynamic graphs) --------------------------------------------

def test_bump_epoch_retires_old_segment_and_republishes(big_graph):
    g2 = erdos_renyi(400, 4000, philox_stream(8), weighted=True)
    fp1 = cached_fingerprint(big_graph)
    fp2 = cached_fingerprint(g2)
    plane.publish(big_graph)
    plane.pin(fp1)
    assert plane.published() == {fp1: 1}

    h = plane.bump_epoch(fp1, g2)
    # old epoch's segment: unpinned and unlinked; new epoch: pinned
    assert h.fingerprint == fp2
    assert plane.published() == {fp2: 1}
    assert len(shm_segments()) == 1
    plane.release_pins((fp2,))
    assert shm_segments() == []


def test_bump_epoch_from_nothing_just_publishes(big_graph):
    h = plane.bump_epoch(None, big_graph)
    assert plane.published() == {h.fingerprint: 1}
    plane.release_pins((h.fingerprint,))
    assert shm_segments() == []


def test_dynamic_graph_bumps_plane_per_epoch(big_graph):
    """A DynamicGraph with plane=True advances the pinned ``rgpl*``
    segment exactly when a query touches a new epoch, and its close()
    releases the last pin."""
    from repro.dynamic import DynamicGraph

    with DynamicGraph(big_graph, p=2, seed=0, plane=True) as dyn:
        dyn.query_components()
        dyn.publish_epoch()
        fp0 = dyn.fingerprint()
        assert plane.published() == {fp0: 1}
        dyn.update_edges([("insert", 0, 399, 1.0)])
        assert plane.published() == {fp0: 1}    # lazy: bumps on query
        dyn.query_components()
        dyn.publish_epoch()
        fp1 = dyn.fingerprint()
        assert fp1 != fp0
        assert plane.published() == {fp1: 1}    # old epoch retired
        assert len(shm_segments()) == 1
        assert dyn.counters["epoch_bumps"] == 2
    assert plane.published() == {}
    assert shm_segments() == []


# -- serve GraphCache pin lockstep -------------------------------------------

def test_graph_cache_pins_follow_residency(big_graph):
    from repro.serve.cache import GraphCache

    g2 = erdos_renyi(400, 4000, philox_stream(13), weighted=True)
    cache = GraphCache(capacity_edges=big_graph.m + 100,  # holds exactly one
                       plane=True)
    fp1 = cache.put_graph(big_graph)
    assert plane.published() == {fp1: 1}
    fp2 = cache.put_graph(g2)                   # evicts g1 -> unpins/unlinks
    assert plane.published() == {fp2: 1}
    assert len(shm_segments()) == 1
    cache.put_graph(g2)                         # same-key re-put: still 1 pin
    assert plane.published() == {fp2: 1}
    cache.close()
    assert plane.published() == {}
    assert shm_segments() == []


def test_graph_cache_plane_off_publishes_nothing(big_graph):
    from repro.serve.cache import GraphCache

    cache = GraphCache(plane=False)
    cache.put_graph(big_graph)
    assert plane.published() == {}
    cache.close()


def test_scheduler_plan_scoped_pin(big_graph):
    require_mp()
    from repro.runtime.mp import MpBackend
    from repro.sched.scheduler import TrialScheduler

    be = MpBackend(graph_plane=True)
    sched = TrialScheduler(wave_size=2)
    run = sched.begin(big_graph, 2, backend=be, seed=3, trials=4)
    assert run.plane_fp == cached_fingerprint(big_graph)
    assert plane.published() == {run.plane_fp: 1}
    while run.step():
        assert plane.published()[run.plane_fp] >= 1  # alive between waves
    res = sched.finish(run)
    assert res.completed == 4
    assert plane.published() == {}              # finish dropped the pin
    run.release()                               # idempotent
    assert shm_segments() == []


# -- BoundedLRU on_evict ------------------------------------------------------

def test_bounded_lru_on_evict_paths():
    gone = []
    lru = BoundedLRU(2, on_evict=lambda k, v: gone.append((k, v)))
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("a", 10)            # same-key replace: no callback
    assert gone == []
    lru.put("c", 3)             # evicts LRU ("b")
    assert gone == [("b", 2)]
    assert lru.pop("a") == 10   # pop fires too
    assert gone == [("b", 2), ("a", 10)]
    lru.clear()                 # clear fires for the rest
    assert gone == [("b", 2), ("a", 10), ("c", 3)]
    assert lru.pop("missing", "d") == "d"
    assert len(gone) == 3


def test_bounded_lru_on_evict_reentrant():
    lru = BoundedLRU(1, on_evict=lambda k, v: len(lru))  # touches the lock
    lru.put("a", 1)
    lru.put("b", 2)             # eviction callback must not deadlock
    assert "b" in lru
