"""Tests for the execution-backend layer (repro.runtime).

The SPMD programs below are module-level functions: the mp backend ships
them to worker processes by pickle, and the spawn start method re-imports
this module in the child.
"""

import operator
import os
import time

import numpy as np
import pytest

from repro.bsp.engine import Engine
from repro.bsp.errors import DeadlockError
from repro.runtime import (
    Backend,
    MpBackend,
    SimBackend,
    WorkerCrashError,
    WorkerProgramError,
    WorkerTimeoutError,
    available_backends,
    resolve_backend,
)
from repro.runtime.transport import decode_payload, encode_payload
from tests.conftest import require_mp

_COUNTER_FIELDS = ("p", "computation", "volume", "supersteps", "misses",
                   "wait", "total_ops", "total_volume")


def assert_reports_equal(a, b):
    for f in _COUNTER_FIELDS:
        assert getattr(a, f) == getattr(b, f), f"counter {f} diverged"


# --- module-level SPMD programs (picklable) --------------------------------

def prog_collectives(ctx, scale):
    """Exercises every collective kind plus imbalance accounting."""
    comm = ctx.comm
    ctx.charge(ops=5 * (ctx.rank + 1))        # imbalance -> wait_ops
    total = yield from comm.allreduce(ctx.rank * scale, op=operator.add)
    arr = np.full(20_000, ctx.rank, dtype=np.int64)   # above shm threshold
    got = yield from comm.bcast(arr, root=1)
    gathered = yield from comm.gather(int(got[0]) + ctx.rank, root=0)
    everywhere = yield from comm.allgather(ctx.rank * 2)
    part = yield from comm.scatter(
        [f"to-{j}" for j in range(comm.size)] if ctx.rank == 0 else None,
        root=0,
    )
    red = yield from comm.reduce(ctx.rank + 1, op=operator.mul, root=0)
    swapped = yield from comm.alltoall([ctx.rank * 100 + j
                                        for j in range(comm.size)])
    yield from comm.barrier()
    sub = yield from comm.split(ctx.rank % 2, ctx.rank)
    subsum = yield from sub.allreduce(ctx.rank, op=operator.add)
    return (total, int(got.sum()), gathered, everywhere, part, red,
            swapped, subsum)


def prog_trivial(ctx):
    yield from ctx.comm.barrier()
    return ctx.rank


def prog_crash(ctx):
    if ctx.rank == 2:
        os._exit(3)
    v = yield from ctx.comm.allreduce(1, op=operator.add)
    return v


def prog_raise(ctx):
    if ctx.rank == 1:
        raise ValueError("boom from rank 1")
    v = yield from ctx.comm.allreduce(1, op=operator.add)
    return v


def prog_hang(ctx):
    if ctx.rank == 0:
        time.sleep(120)
    v = yield from ctx.comm.allreduce(1, op=operator.add)
    return v


def prog_deadlock(ctx):
    if ctx.rank == 0:
        return "bailed"
    v = yield from ctx.comm.allreduce(1, op=operator.add)
    return v


def prog_big_payloads(ctx, n):
    """Arrays big enough to ride shared-memory segments both directions."""
    comm = ctx.comm
    mine = np.arange(n, dtype=np.float64) * (ctx.rank + 1)
    blocks = yield from comm.allgather(mine)
    stacked = yield from comm.bcast(
        np.vstack(blocks) if ctx.rank == 0 else None, root=0
    )
    return float(stacked.sum())


# --- resolution ------------------------------------------------------------

class TestResolution:
    def test_available(self):
        names = available_backends()
        assert set(names) >= {"sim", "mp"}

    def test_default_is_sim(self):
        assert isinstance(resolve_backend(None), SimBackend)
        assert isinstance(resolve_backend("sim"), SimBackend)

    def test_mp_by_name(self):
        assert isinstance(resolve_backend("mp"), MpBackend)

    def test_instance_passthrough(self):
        b = SimBackend()
        assert resolve_backend(b) is b

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="sim"):
            resolve_backend("quantum")

    def test_engine_flows_into_sim(self):
        eng = Engine()
        b = resolve_backend(None, engine=eng)
        assert b.engine is eng

    def test_engine_plus_mp_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("mp", engine=Engine())

    def test_engine_plus_instance_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(SimBackend(), engine=Engine())

    def test_backend_protocol(self):
        assert issubclass(SimBackend, Backend)
        assert issubclass(MpBackend, Backend)


# --- transport -------------------------------------------------------------

class TestTransport:
    def test_small_objects_pass_through(self):
        obj = {"a": [1, 2.5, "x"], "b": (None, np.arange(4))}
        enc = encode_payload(obj, 1 << 16)
        assert isinstance(enc["b"][1], np.ndarray)  # below threshold: inline
        dec = decode_payload(enc)
        assert np.array_equal(dec["b"][1], np.arange(4))

    def test_large_array_round_trip(self):
        arr = np.arange(50_000, dtype=np.int64)
        enc = encode_payload((arr, "tag"), 1 << 10)
        assert not isinstance(enc[0], np.ndarray)  # hoisted to a segment
        dec = decode_payload(enc)
        assert np.array_equal(dec[0], arr)
        assert dec[1] == "tag"

    def test_nested_structures(self):
        payload = [{"rows": np.ones((300, 300)), "k": 7}, (np.zeros(3),)]
        dec = decode_payload(encode_payload(payload, 1 << 12))
        assert np.array_equal(dec[0]["rows"], np.ones((300, 300)))
        assert dec[0]["k"] == 7


# --- sim backend -----------------------------------------------------------

class TestSimBackend:
    def test_matches_engine(self):
        direct = Engine().run(prog_collectives, 4, seed=3, args=(2,))
        via = SimBackend().run(prog_collectives, 4, seed=3, args=(2,))
        assert direct.values == via.values
        assert_reports_equal(direct.report, via.report)

    def test_engine_conflicts_rejected(self):
        with pytest.raises(ValueError):
            SimBackend(engine=Engine(), trace=True)


# --- mp backend ------------------------------------------------------------

class TestMpBackend:
    def test_collectives_match_sim(self):
        require_mp()
        sim = SimBackend().run(prog_collectives, 4, seed=7, args=(3,))
        mp_ = MpBackend(timeout=120.0).run(prog_collectives, 4, seed=7,
                                           args=(3,))
        assert sim.values == mp_.values
        assert_reports_equal(sim.report, mp_.report)

    def test_measured_times(self):
        require_mp()
        res = MpBackend(timeout=120.0).run(prog_trivial, 2, seed=0)
        assert res.values == [0, 1]
        assert res.time.app_s >= 0.0
        assert res.time.mpi_s > 0.0  # the barrier blocked for real

    def test_shared_memory_payloads(self):
        require_mp()
        sim = SimBackend().run(prog_big_payloads, 3, seed=1, args=(30_000,))
        mp_ = MpBackend(timeout=120.0, shm_threshold=1 << 12).run(
            prog_big_payloads, 3, seed=1, args=(30_000,))
        assert sim.values == mp_.values

    def test_p_one(self):
        require_mp()
        res = MpBackend(timeout=120.0).run(prog_trivial, 1, seed=0)
        assert res.values == [0]

    def test_spawn_start_method(self):
        require_mp()
        res = MpBackend(start_method="spawn", timeout=180.0).run(
            prog_trivial, 2, seed=0)
        assert res.values == [0, 1]

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            MpBackend().run(prog_trivial, 0)
        with pytest.raises(TypeError):
            MpBackend().run(prog_trivial, 2.5)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MpBackend(timeout=0)
        with pytest.raises(ValueError):
            MpBackend(start_method="osc8")


class TestMpFaults:
    def test_crashed_worker_reported(self):
        require_mp()
        with pytest.raises(WorkerCrashError) as exc:
            MpBackend(timeout=60.0).run(prog_crash, 3, seed=0)
        assert exc.value.rank == 2
        assert exc.value.exitcode == 3
        assert "rank 2" in str(exc.value)

    def test_program_exception_forwarded(self):
        require_mp()
        with pytest.raises(WorkerProgramError) as exc:
            MpBackend(timeout=60.0).run(prog_raise, 3, seed=0)
        assert exc.value.rank == 1
        assert exc.value.exc_type == "ValueError"
        assert "boom from rank 1" in str(exc.value)

    def test_hung_worker_times_out(self):
        require_mp()
        t0 = time.monotonic()
        with pytest.raises(WorkerTimeoutError) as exc:
            MpBackend(timeout=2.0).run(prog_hang, 2, seed=0)
        assert time.monotonic() - t0 < 60.0  # bounded, never a hang
        assert exc.value.missing == [0]

    def test_deadlock_detected(self):
        require_mp()
        with pytest.raises(DeadlockError):
            MpBackend(timeout=60.0).run(prog_deadlock, 2, seed=0)


# --- engine contract (satellite: p validation) -----------------------------

class TestEngineContract:
    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_engine_rejects_small_p(self, bad):
        with pytest.raises(ValueError, match=">= 1"):
            Engine().run(prog_trivial, bad)

    @pytest.mark.parametrize("bad", [2.0, "4", None])
    def test_engine_rejects_non_integer_p(self, bad):
        with pytest.raises(TypeError, match="integer"):
            Engine().run(prog_trivial, bad)

    def test_run_spmd_shares_contract(self):
        from repro.bsp.engine import run_spmd

        with pytest.raises(ValueError, match=">= 1"):
            run_spmd(prog_trivial, 0)
        with pytest.raises(TypeError, match="integer"):
            run_spmd(prog_trivial, 1.5)

    def test_numpy_integer_p_accepted(self):
        res = Engine().run(prog_trivial, np.int64(2))
        assert res.values == [0, 1]
