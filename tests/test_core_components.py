"""Tests for the sampling-based connected components algorithm (§3.2)."""

import numpy as np
import pytest

from repro.cache import LRUTracker
from repro.core import connected_components, cc_sequential
from repro.graph import (
    EdgeList,
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    rmat,
    verification_suite,
    watts_strogatz,
)
from repro.graph.validate import networkx_components
from repro.rng import philox_stream
from tests.conftest import assert_same_partition


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_er_components(self, p):
        g = erdos_renyi(300, 350, philox_stream(10))
        res = connected_components(g, p=p, seed=1)
        assert res.n_components == networkx_components(g)
        assert (res.labels[g.u] == res.labels[g.v]).all()

    def test_labels_are_dense(self):
        g = erdos_renyi(100, 80, philox_stream(11))
        res = connected_components(g, p=3, seed=2)
        assert set(np.unique(res.labels)) == set(range(res.n_components))

    def test_all_graph_families(self):
        rng = philox_stream(12)
        graphs = [
            erdos_renyi(200, 400, rng),
            watts_strogatz(128, 4, rng),
            barabasi_albert(150, 2, rng),
            rmat(128, 500, rng),
            grid_graph(10, 12),
        ]
        for g in graphs:
            res = connected_components(g, p=4, seed=3)
            assert res.n_components == networkx_components(g)

    def test_verification_suite(self):
        for case in verification_suite():
            res = connected_components(case.graph, p=3, seed=4)
            assert res.n_components == case.components, case.name

    def test_empty_graph(self):
        g = EdgeList.empty(9)
        res = connected_components(g, p=2, seed=0)
        assert res.n_components == 9
        assert np.array_equal(np.sort(res.labels), np.arange(9))

    def test_single_edge(self):
        g = EdgeList.from_pairs(3, [(0, 2)])
        res = connected_components(g, p=2, seed=0)
        assert res.n_components == 2

    def test_connected_graph(self):
        g = watts_strogatz(100, 6, philox_stream(13), rewire_p=0.0)
        res = connected_components(g, p=4, seed=5)
        assert res.n_components == 1

    def test_partition_matches_truth(self):
        g = erdos_renyi(150, 160, philox_stream(14))
        res = connected_components(g, p=4, seed=6)
        import networkx as nx

        h = nx.Graph()
        h.add_nodes_from(range(g.n))
        h.add_edges_from(zip(g.u.tolist(), g.v.tolist()))
        truth = np.empty(g.n, dtype=np.int64)
        for i, comp in enumerate(nx.connected_components(h)):
            truth[list(comp)] = i
        assert_same_partition(g, res.labels, truth)


class TestDeterminismAndCosts:
    def test_deterministic(self):
        g = erdos_renyi(200, 300, philox_stream(15))
        a = connected_components(g, p=4, seed=7)
        b = connected_components(g, p=4, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_constant_supersteps(self):
        """O(1) iterations w.h.p. -> supersteps independent of n."""
        steps = []
        for n in (200, 800, 3200):
            g = erdos_renyi(n, 4 * n, philox_stream(16))
            res = connected_components(g, p=4, seed=8)
            steps.append(res.report.supersteps)
        assert max(steps) <= 25
        assert max(steps) <= steps[0] + 12  # no growth trend with n

    def test_communication_subquadratic(self):
        """Volume is O(n^(1+eps)), independent of m."""
        n = 500
        sparse = erdos_renyi(n, 2 * n, philox_stream(17))
        dense = erdos_renyi(n, 40 * n, philox_stream(18))
        vs = connected_components(sparse, p=4, seed=9).report.volume
        vd = connected_components(dense, p=4, seed=9).report.volume
        assert vd < 4 * vs  # volume tracks n, not m

    def test_eps_parameter(self):
        g = erdos_renyi(300, 900, philox_stream(19))
        for eps in (0.1, 0.4):
            res = connected_components(g, p=3, seed=10, eps=eps)
            assert res.n_components == networkx_components(g)


class TestBackends:
    """The same entry point on each execution backend (smoke-level)."""

    def test_components_by_backend(self, backend):
        g = erdos_renyi(200, 260, philox_stream(22))
        res = connected_components(g, p=3, seed=13, backend=backend)
        assert res.n_components == networkx_components(g)
        assert (res.labels[g.u] == res.labels[g.v]).all()

    def test_backends_agree_exactly(self, backend):
        g = erdos_renyi(150, 200, philox_stream(23))
        ref = connected_components(g, p=3, seed=14)  # sim oracle
        res = connected_components(g, p=3, seed=14, backend=backend)
        assert np.array_equal(res.labels, ref.labels)
        assert res.report == ref.report


class TestSequential:
    def test_matches_parallel(self):
        g = erdos_renyi(250, 260, philox_stream(20))
        labels, k = cc_sequential(g, seed=11)
        assert k == networkx_components(g)
        assert (labels[g.u] == labels[g.v]).all()

    def test_instrumented_run_counts(self):
        g = erdos_renyi(200, 800, philox_stream(21))
        mem = LRUTracker(M=4096, B=8)
        labels, k = cc_sequential(g, seed=12, mem=mem)
        assert k == networkx_components(g)
        assert mem.miss_count > 0
        assert mem.op_count > g.m

    def test_empty(self):
        labels, k = cc_sequential(EdgeList.empty(4), seed=0)
        assert k == 4
