"""Differential tests: vectorized kernels vs their scalar references.

Every fast kernel in :mod:`repro.kernels` must return *byte-identical*
output to the scalar loop it replaced (weights excepted, which may differ
by float-summation order — see ``scalar_bulk_contract``).  The families
below exercise the shapes that break naive vectorizations: stars (deep
fan-in), paths (long chains), parallel-edge-heavy multigraphs, self-loop
heavy streams, the empty graph, and a single vertex — plus
hypothesis-generated random edge streams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contraction import prefix_select
from repro.graph.contract import union_find_components
from repro.kernels import (
    bulk_contract_edges,
    cc_labels,
    cc_roots,
    combine_packed,
    earliest_forest,
    flatten_parents,
    prefix_select_labels,
    scalar_bulk_contract,
    scalar_cc_roots,
    scalar_prefix_select,
    stable_sort_with_order,
)
from repro.kernels.unionfind import _earliest_forest_scalar

# ---------------------------------------------------------------------------
# Edge-set families
# ---------------------------------------------------------------------------


def _families():
    rng = np.random.default_rng(7)
    fams = {
        "empty": (5, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)),
        "single_vertex": (1, np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int64)),
        "single_selfloop": (3, np.array([1]), np.array([1])),
        "star": (64, np.zeros(63, dtype=np.int64),
                 np.arange(1, 64, dtype=np.int64)),
        "reversed_star": (64, np.arange(1, 64, dtype=np.int64),
                          np.zeros(63, dtype=np.int64)),
        "path": (80, np.arange(79, dtype=np.int64),
                 np.arange(1, 80, dtype=np.int64)),
        "reversed_path": (80, np.arange(79, 0, -1, dtype=np.int64),
                          np.arange(78, -1, -1, dtype=np.int64)),
    }
    u = rng.integers(0, 12, size=300)
    v = rng.integers(0, 12, size=300)
    fams["parallel_heavy"] = (12, u, v)
    u = rng.integers(0, 40, size=200)
    v = np.where(rng.random(200) < 0.5, u, rng.integers(0, 40, size=200))
    fams["selfloop_heavy"] = (40, u, v)
    u = rng.integers(0, 500, size=400)
    v = rng.integers(0, 500, size=400)
    fams["sparse_random"] = (500, u, v)
    return fams


FAMILIES = _families()


@st.composite
def edge_streams(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    ints = st.integers(min_value=0, max_value=n - 1)
    u = np.array(draw(st.lists(ints, min_size=m, max_size=m)), dtype=np.int64)
    v = np.array(draw(st.lists(ints, min_size=m, max_size=m)), dtype=np.int64)
    return n, u, v


# ---------------------------------------------------------------------------
# Connected components / union-find
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("backend", ["scipy", "jumping"])
def test_cc_roots_backends_exact(family, backend):
    n, u, v = FAMILIES[family]
    expected = scalar_cc_roots(n, u, v)
    np.testing.assert_array_equal(cc_roots(n, u, v, backend=backend), expected)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_cc_labels_backends_exact(family):
    n, u, v = FAMILIES[family]
    ref_labels, ref_count = cc_labels(n, u, v, backend="scalar")
    for backend in ("scipy", "jumping", "auto"):
        labels, count = cc_labels(n, u, v, backend=backend)
        assert count == ref_count
        np.testing.assert_array_equal(labels, ref_labels)


@given(edge_streams())
@settings(max_examples=120, deadline=None)
def test_cc_roots_random_exact(stream):
    n, u, v = stream
    expected = scalar_cc_roots(n, u, v)
    np.testing.assert_array_equal(cc_roots(n, u, v, backend="scipy"), expected)
    np.testing.assert_array_equal(cc_roots(n, u, v, backend="jumping"),
                                  expected)


def test_union_find_components_fast_vs_slow():
    for n, u, v in FAMILIES.values():
        np.testing.assert_array_equal(
            union_find_components(n, u, v),
            union_find_components(n, u, v, slow=True),
        )


def test_flatten_parents_matches_naive():
    rng = np.random.default_rng(3)
    for n in (1, 2, 17, 200):
        # Random forest: parent[i] <= i guarantees acyclicity.
        parent = np.array([rng.integers(0, i + 1) for i in range(n)],
                          dtype=np.int64)
        naive = parent.copy()
        for x in range(n):
            r = x
            while naive[r] != r:
                r = naive[r]
            naive[x] = r
        np.testing.assert_array_equal(flatten_parents(parent), naive)


# ---------------------------------------------------------------------------
# Earliest-arrival forest and Prefix Selection
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_earliest_forest_exact(family):
    n, u, v = FAMILIES[family]
    su, sv = _earliest_forest_scalar(n, u, v)
    fu, fv = earliest_forest(n, u, v)
    np.testing.assert_array_equal(fu, su)
    np.testing.assert_array_equal(fv, sv)


@given(edge_streams())
@settings(max_examples=120, deadline=None)
def test_earliest_forest_random_exact(stream):
    n, u, v = stream
    su, sv = _earliest_forest_scalar(n, u, v)
    fu, fv = earliest_forest(n, u, v)
    np.testing.assert_array_equal(fu, su)
    np.testing.assert_array_equal(fv, sv)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_prefix_select_exact_all_targets(family):
    n, u, v = FAMILIES[family]
    for t in {1, 2, max(1, n // 2), max(1, n - 1), n}:
        exp_labels, exp_count = scalar_prefix_select(n, u, v, t)
        labels, count = prefix_select_labels(n, u, v, t)
        assert count == exp_count
        np.testing.assert_array_equal(labels, exp_labels)


@given(edge_streams(), st.integers(min_value=1, max_value=40))
@settings(max_examples=150, deadline=None)
def test_prefix_select_random_exact(stream, t):
    n, u, v = stream
    t = min(t, n)
    exp_labels, exp_count = scalar_prefix_select(n, u, v, t)
    labels, count = prefix_select_labels(n, u, v, t)
    assert count == exp_count
    np.testing.assert_array_equal(labels, exp_labels)


def test_prefix_select_dispatcher_fast_vs_slow():
    n, u, v = FAMILIES["sparse_random"]
    fast = prefix_select(n, u, v, 50)
    slow = prefix_select(n, u, v, 50, slow=True)
    assert fast[1] == slow[1]
    np.testing.assert_array_equal(fast[0], slow[0])


def test_prefix_select_rejects_bad_target():
    with pytest.raises(ValueError):
        prefix_select_labels(4, np.array([0]), np.array([1]), 0)
    with pytest.raises(ValueError):
        scalar_prefix_select(4, np.array([0]), np.array([1]), 0)


# ---------------------------------------------------------------------------
# Bulk contraction / combine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_bulk_contract_matches_scalar(family):
    n, u, v = FAMILIES[family]
    rng = np.random.default_rng(11)
    w = rng.random(u.size) + 0.25
    n_new = max(1, n // 3)
    labels = rng.integers(0, n_new, size=n, dtype=np.int64)
    fu, fv, fw = bulk_contract_edges(u, v, w, labels, n_new)
    su, sv, sw = scalar_bulk_contract(u, v, w, labels, n_new)
    np.testing.assert_array_equal(fu, su)
    np.testing.assert_array_equal(fv, sv)
    np.testing.assert_allclose(fw, sw, rtol=1e-12, atol=0.0)


def test_combine_packed_reduceat_matches_argsort_formulation():
    """The sort+decode fast path must reproduce the original stable-argsort
    combine bit for bit (the BSP counter baselines depend on it)."""
    rng = np.random.default_rng(5)
    for m in (0, 1, 7, 1000, 5000):
        keys = rng.integers(0, 97, size=m).astype(np.int64)
        w = rng.random(m)
        got_k, got_w = combine_packed(keys, w)
        order = np.argsort(keys, kind="stable")
        ks, ws = keys[order], w[order]
        if m:
            starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
            exp_k, exp_w = ks[starts], np.add.reduceat(ws, starts)
        else:
            exp_k, exp_w = keys, w
        np.testing.assert_array_equal(got_k, exp_k)
        np.testing.assert_array_equal(got_w, exp_w)  # bitwise, not allclose


def test_stable_sort_with_order_is_stable():
    rng = np.random.default_rng(9)
    keys = rng.integers(0, 10, size=4000).astype(np.int64)
    sorted_keys, order = stable_sort_with_order(keys)
    expected = np.argsort(keys, kind="stable")
    np.testing.assert_array_equal(order, expected)
    np.testing.assert_array_equal(sorted_keys, keys[expected])
    # Overflow fallback: huge keys must still sort stably.
    big = (np.int64(1) << 62) + rng.integers(0, 3, size=100).astype(np.int64)
    sorted_big, order_big = stable_sort_with_order(big)
    np.testing.assert_array_equal(order_big, np.argsort(big, kind="stable"))
    np.testing.assert_array_equal(sorted_big, big[order_big])


def test_combine_packed_bincount_same_keys_close_weights():
    rng = np.random.default_rng(13)
    keys = rng.integers(0, 50, size=2000).astype(np.int64)
    w = rng.random(2000)
    k1, w1 = combine_packed(keys, w, method="reduceat")
    k2, w2 = combine_packed(keys, w, method="bincount")
    np.testing.assert_array_equal(k1, k2)
    np.testing.assert_allclose(w1, w2, rtol=1e-12)
    with pytest.raises(ValueError):
        combine_packed(keys, w, method="nope")


# ---------------------------------------------------------------------------
# payload_words fast paths
# ---------------------------------------------------------------------------


def test_payload_words_fast_paths_match_generic():
    from repro.bsp.comm import payload_words

    class Custom:
        def __bsp_words__(self):
            return 17

    cases = [
        None,
        3,
        "x",
        np.zeros(5),
        (np.zeros(3), np.zeros(4, dtype=np.int64)),
        [np.zeros(2), None, 7, Custom()],
        [(np.zeros(3),), [np.zeros((2, 2))], {"a": np.zeros(6), "b": None}],
        {"k": [np.zeros(3), Custom()]},
        Custom(),
        [],
        (),
    ]
    expected = [0, 1, 1, 5, 7, 2 + 0 + 1 + 17, 3 + 4 + (1 + 6) + (1 + 0),
                1 + 3 + 17, 17, 0, 0]
    for x, e in zip(cases, expected):
        assert payload_words(x) == e, x
