"""Typed array collectives: gatherv/allgatherv/scatterv/alltoallv.

Covers the shapes the paper's algorithms actually move — empty slices,
p = 1, single-rank-owns-everything skew, mixed dtypes — plus the two
parity contracts the engine promises: charges identical to the untyped
tuple-of-arrays encoding, and sim-vs-mp bit-identity of results,
counters, and traces through the typed path.
"""

import dataclasses

import numpy as np
import pytest

from repro.bsp.arrays import ArrayBundle, as_bundle
from repro.bsp.engine import Engine
from repro.bsp.errors import CollectiveMismatchError
from repro.runtime.mp import MpBackend
from repro.runtime.sim import SimBackend
from tests.conftest import require_mp


# --- ArrayBundle ------------------------------------------------------------

class TestArrayBundle:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            ArrayBundle(np.arange(3), np.arange(4))
        with pytest.raises(ValueError):
            ArrayBundle(np.arange(3), np.ones(()))  # 0-d column

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            ArrayBundle(np.array([object()], dtype=object))

    def test_words_exclude_counts(self):
        b = ArrayBundle(np.arange(5), np.arange(5.0),
                        counts=np.array([2, 3], dtype=np.int64))
        assert b.__bsp_words__() == 10  # counts are free metadata

    def test_destructuring_and_indexing(self):
        u, v = ArrayBundle(np.arange(4), np.arange(4) * 2)
        assert np.array_equal(v, np.arange(4) * 2)
        b = ArrayBundle(u, v)
        assert b.ncols == 2 and b.nrows == 4 and len(b) == 2
        assert np.array_equal(b[1], v)

    def test_concat_and_split_round_trip(self):
        a = ArrayBundle(np.arange(3), np.arange(3) < 1)
        b = ArrayBundle(np.arange(5) + 10, np.arange(5) < 3)
        cat = ArrayBundle.concat([a, b])
        assert list(cat.counts) == [3, 5]
        assert cat[1].dtype == np.bool_
        back = cat.split_rows(cat.counts)
        assert back[0] == a and back[1] == b

    def test_concat_mismatched_ncols(self):
        with pytest.raises(ValueError):
            ArrayBundle.concat([ArrayBundle(np.arange(2)),
                                ArrayBundle(np.arange(2), np.arange(2))])

    def test_as_bundle_coercions(self):
        arr = np.arange(3)
        assert as_bundle(arr).ncols == 1
        assert as_bundle((arr, arr * 2)).ncols == 2
        b = ArrayBundle(arr)
        assert as_bundle(b) is b
        with pytest.raises(TypeError):
            as_bundle("nope")


# --- engine semantics -------------------------------------------------------

def run(prog, p, seed=0):
    return Engine().run(prog, p, seed=seed)


class TestTypedSemantics:
    def test_gatherv_concatenates_in_rank_order(self):
        def prog(ctx):
            u = np.full(ctx.rank + 1, ctx.rank, dtype=np.int64)
            w = u.astype(np.float64) / 2
            got = yield from ctx.comm.gatherv(u, w, root=1)
            if ctx.rank == 1:
                gu, gw = got
                return gu.tolist(), gw.tolist(), got.counts.tolist()
            return got

        res = run(prog, 3)
        assert res.values[0] is None and res.values[2] is None
        gu, gw, counts = res.values[1]
        assert gu == [0, 1, 1, 2, 2, 2]
        assert gw == [0.0, 0.5, 0.5, 1.0, 1.0, 1.0]
        assert counts == [1, 2, 3]

    def test_scatterv_skew_single_rank_owns_everything(self):
        def prog(ctx):
            if ctx.rank == 0:
                cols = (np.arange(10, dtype=np.int64), np.arange(10) % 2 == 0)
                counts = [0, 10, 0]
            else:
                cols = counts = None
            part = yield from ctx.comm.scatterv(cols, counts, root=0)
            return part.nrows, part[1].dtype.str

        res = run(prog, 3)
        assert [v[0] for v in res.values] == [0, 10, 0]
        assert all(v[1] == "|b1" for v in res.values)  # bool preserved

    def test_alltoallv_empty_everywhere(self):
        def prog(ctx):
            parcels = [np.zeros(0, dtype=np.float64)] * ctx.comm.size
            got = yield from ctx.comm.alltoallv(parcels)
            return got.nrows, got.counts.tolist(), got[0].dtype.str

        res = run(prog, 3)
        assert all(v == (0, [0, 0, 0], "<f8") for v in res.values)

    def test_p1_degenerate(self):
        def prog(ctx):
            g = yield from ctx.comm.gatherv(np.arange(4), root=0)
            ag = yield from ctx.comm.allgatherv(np.arange(2.0))
            sc = yield from ctx.comm.scatterv(np.arange(3), [3], root=0)
            aa = yield from ctx.comm.alltoallv([np.ones(2, dtype=bool)])
            return (g.nrows, ag.nrows, sc.nrows, aa.nrows)

        res = run(prog, 1)
        assert res.values == [(4, 2, 3, 2)]

    def test_dtype_preservation(self):
        dtypes = [np.int64, np.float64, np.bool_]

        def prog(ctx):
            cols = [np.ones(3 + ctx.rank, dtype=dt) for dt in dtypes]
            got = yield from ctx.comm.allgatherv(*cols)
            return [c.dtype.str for c in got]

        res = run(prog, 2)
        want = [np.dtype(dt).str for dt in dtypes]
        assert res.values == [want, want]

    def test_column_count_mismatch_raises(self):
        def prog(ctx):
            cols = (np.arange(2),) if ctx.rank == 0 else \
                (np.arange(2), np.arange(2))
            yield from ctx.comm.gatherv(*cols, root=0)

        with pytest.raises(CollectiveMismatchError):
            run(prog, 2)

    def test_scatterv_count_validation(self):
        def bad_sum(ctx):
            counts = [1, 1] if ctx.rank == 0 else None
            cols = np.arange(5) if ctx.rank == 0 else None
            yield from ctx.comm.scatterv(cols, counts, root=0)

        def negative(ctx):
            counts = [-1, 6] if ctx.rank == 0 else None
            cols = np.arange(5) if ctx.rank == 0 else None
            yield from ctx.comm.scatterv(cols, counts, root=0)

        with pytest.raises(ValueError):
            run(bad_sum, 2)
        with pytest.raises(ValueError):
            run(negative, 2)

    def test_alltoallv_parcel_count_validation(self):
        def prog(ctx):
            yield from ctx.comm.alltoallv([np.arange(2)])

        with pytest.raises(ValueError):
            run(prog, 2)


# --- charge parity with the untyped encodings -------------------------------

class TestChargeParity:
    """The *v collectives must charge exactly what gather/allgather/
    scatter/alltoall of the equivalent tuples-of-arrays charged."""

    def _compare(self, typed, untyped, p):
        rt = Engine().run(typed, p)
        ru = Engine().run(untyped, p)
        assert rt.report == ru.report

    def test_gatherv_vs_gather(self):
        def typed(ctx):
            yield from ctx.comm.gatherv(
                np.arange(10 * (ctx.rank + 1)), np.ones(10 * (ctx.rank + 1)),
                root=0)

        def untyped(ctx):
            part = (np.arange(10 * (ctx.rank + 1)),
                    np.ones(10 * (ctx.rank + 1)))
            yield from ctx.comm.gather(part, root=0)

        self._compare(typed, untyped, 3)

    def test_allgatherv_vs_allgather(self):
        def typed(ctx):
            yield from ctx.comm.allgatherv(np.arange(7), np.ones(7))

        def untyped(ctx):
            yield from ctx.comm.allgather((np.arange(7), np.ones(7)))

        self._compare(typed, untyped, 3)

    def test_scatterv_vs_scatter_of_scalars(self):
        def typed(ctx):
            cols = np.arange(3, dtype=np.int64) if ctx.rank == 0 else None
            counts = np.ones(3, dtype=np.int64) if ctx.rank == 0 else None
            yield from ctx.comm.scatterv(cols, counts, root=0)

        def untyped(ctx):
            vals = [0, 1, 2] if ctx.rank == 0 else None
            yield from ctx.comm.scatter(vals, root=0)

        self._compare(typed, untyped, 3)

    def test_alltoallv_vs_alltoall(self):
        def typed(ctx):
            parcels = [(np.arange(j + 1), np.ones(j + 1))
                       for j in range(ctx.comm.size)]
            yield from ctx.comm.alltoallv(parcels)

        def untyped(ctx):
            parcels = [(np.arange(j + 1), np.ones(j + 1))
                       for j in range(ctx.comm.size)]
            yield from ctx.comm.alltoall(parcels)

        self._compare(typed, untyped, 3)


# --- sim-vs-mp bit-identity through the typed path --------------------------

def typed_mix_program(ctx, n):
    """Exercises all four typed collectives with skewed, mixed-dtype data."""
    rank, size = ctx.rank, ctx.comm.size
    u = np.arange(rank * n, (rank + 1) * n, dtype=np.int64)
    w = np.sqrt(u.astype(np.float64) + 1)
    flags = (u % 3 == 0)

    gat = yield from ctx.comm.gatherv(u, w, flags, root=0)
    ag = yield from ctx.comm.allgatherv(u)
    if rank == 0:
        total = gat.nrows
        counts = np.zeros(size, dtype=np.int64)
        counts[-1] = total  # skew: the last rank receives everything
        cols, cnts = (gat.columns[0], gat.columns[1]), counts
    else:
        cols = cnts = None
    part = yield from ctx.comm.scatterv(cols, cnts, root=0)
    parcels = [
        (u[j::size], w[j::size]) for j in range(size)
    ]
    ex = yield from ctx.comm.alltoallv(parcels)
    return (
        int(ag[0].sum()), part.nrows, int(ex.nrows),
        float(ex[1].sum()), ex.counts.tolist(),
    )


class TestBackendParity:
    def test_values_counters_match(self):
        require_mp()
        sim = SimBackend().run(typed_mix_program, 3, seed=2, args=(5000,))
        mp_ = MpBackend(timeout=120.0, shm_threshold=1 << 12).run(
            typed_mix_program, 3, seed=2, args=(5000,))
        assert sim.values == mp_.values
        assert sim.report == mp_.report

    def test_traces_identical(self):
        require_mp()
        sim = SimBackend(trace=True).run(typed_mix_program, 2, seed=9,
                                         args=(4000,))
        mp_ = MpBackend(timeout=120.0, trace=True,
                        shm_threshold=1 << 12).run(
            typed_mix_program, 2, seed=9, args=(4000,))
        strip = lambda evs: [dataclasses.replace(e, wall_s=0.0) for e in evs]
        assert strip(sim.trace) == strip(mp_.trace)

    def test_legacy_transport_matches_too(self):
        require_mp()
        sim = SimBackend().run(typed_mix_program, 2, seed=4, args=(3000,))
        mp_ = MpBackend(timeout=120.0, use_arena=False,
                        shm_threshold=1 << 12).run(
            typed_mix_program, 2, seed=4, args=(3000,))
        assert sim.values == mp_.values
        assert sim.report == mp_.report
