"""Dynamic sessions through the serve daemon: verbs, staleness, resume.

Reuses the two harness styles of ``test_serve_daemon``: threadless
daemons (requests via ``handle_request``, executor driven by hand) for
everything that asserts on submit/dispatch interleaving or restart, and
a live socket daemon for the end-to-end client path.
"""

import threading

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, update_stream
from repro.graph import erdos_renyi, write_edgelist
from repro.rng import philox_stream
from repro.serve import Client, Daemon, ServeConfig, ServeError, wait_server

from .test_serve_daemon import drive, threadless


@pytest.fixture
def graph():
    return erdos_renyi(60, 240, philox_stream(31), weighted=True)


@pytest.fixture
def graph_file(graph, tmp_path):
    path = str(tmp_path / "g.edges")
    write_edgelist(graph, path)
    return path


@pytest.fixture
def stream(graph):
    return list(update_stream(graph, seed=7, batches=6, batch_size=10))


def dyn_open(d, path, **fields):
    reply = d.handle_request({"op": "dyn_open", "path": path, **fields})
    assert reply["ok"], reply
    return reply["session"]


def dyn_query(d, sid, query="components", **fields):
    reply = d.handle_request({"op": "dyn_query", "session": sid,
                              "query": query, **fields})
    assert reply["ok"], reply
    return reply["job"]


def local_reference(graph, stream, **kw):
    dyn = DynamicGraph(graph, p=4, seed=0, backend="sim", **kw)
    for ops in stream:
        dyn.update_edges(ops)
    return dyn


# -- verbs, threadless --------------------------------------------------------


def test_dyn_verbs_validate(graph_file, tmp_path):
    d = threadless(tmp_path)
    missing = d.handle_request({"op": "dyn_open"})
    assert missing["error"] == "ProtocolError"
    bad_fp = d.handle_request({"op": "dyn_open", "path": graph_file,
                               "fingerprint": "f" * 64})
    assert bad_fp["error"] == "FingerprintMismatch"
    gone = d.handle_request({"op": "dyn_update", "session": "dX",
                             "ops": []})
    assert gone["error"] == "ProtocolError"
    sid = dyn_open(d, graph_file)
    assert d.handle_request({"op": "dyn_update", "session": sid,
                             "ops": "nope"})["error"] == "ProtocolError"
    assert d.handle_request(
        {"op": "dyn_query", "session": sid,
         "query": "frobnicate"})["error"] == "ProtocolError"
    assert d.handle_request(
        {"op": "dyn_query", "session": sid, "query": "cut",
         "mode": "psychic"})["error"] == "ProtocolError"
    assert d.handle_request(
        {"op": "dyn_query", "session": sid, "query": "cut",
         "if_stale": "shrug"})["error"] == "ProtocolError"


def test_dyn_update_bad_ops_typed_error(graph_file, tmp_path):
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file)
    reply = d.handle_request({"op": "dyn_update", "session": sid,
                              "ops": [["delete", 0, 59]]})
    assert reply["error"] == "BadUpdate"
    # the failed batch was not applied: epoch unmoved
    st = d.handle_request({"op": "dyn_staleness", "session": sid})
    assert st["epoch"] == 0


def test_dyn_query_matches_local(graph, graph_file, stream, tmp_path):
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file, seed=0, p=4)
    for ops in stream:
        reply = d.handle_request({"op": "dyn_update", "session": sid,
                                  "ops": ops})
        assert reply["ok"]
    jid = dyn_query(d, sid, "components")
    drive(d)
    doc = d.handle_request({"op": "result", "job": jid})["result"]
    ref = local_reference(graph, stream).query_components()
    assert doc["epoch"] == len(stream)
    assert doc["n_components"] == ref.n_components
    assert doc["labels"] == [int(x) for x in ref.labels]
    assert doc["session"] == sid


def test_dyn_close_discards_state(graph_file, tmp_path):
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file)
    ddir = d.dynamic.dir
    import os

    assert os.path.exists(os.path.join(ddir, f"{sid}.json"))
    reply = d.handle_request({"op": "dyn_close", "session": sid})
    assert reply["closed"]
    assert not os.path.exists(os.path.join(ddir, f"{sid}.json"))
    assert not os.path.exists(os.path.join(ddir, f"{sid}.updates.jsonl"))
    # idempotent
    assert not d.handle_request({"op": "dyn_close",
                                 "session": sid})["closed"]


def test_stats_reports_sessions(graph_file, tmp_path):
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file)
    d.handle_request({"op": "dyn_update", "session": sid,
                      "ops": [["insert", 0, 1, 1.0]]})
    st = d.handle_request({"op": "stats"})
    assert st["dynamic"] == {"sessions": 1, "epochs": {sid: 1}}


# -- satellite: stale-epoch jobs at dispatch ----------------------------------


def test_stale_epoch_rejected_with_typed_error(graph_file, stream, tmp_path):
    """An update lands between submit and dispatch: reject is typed."""
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file, seed=0, p=4)
    jid = dyn_query(d, sid, "components", if_stale="reject")
    # epoch advances while the job sits in the queue
    d.handle_request({"op": "dyn_update", "session": sid, "ops": stream[0]})
    drive(d)
    job = d.jobs[jid]
    assert job.state == "failed"
    assert job.error_type == "StaleEpoch"
    reply = d.handle_request({"op": "result", "job": jid})
    assert reply["error"] == "StaleEpoch"
    assert "0 -> 1" in reply["message"]


def test_stale_epoch_requeue_answers_live_epoch(graph, graph_file, stream,
                                                tmp_path):
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file, seed=0, p=4)
    jid = dyn_query(d, sid, "components", if_stale="requeue")
    d.handle_request({"op": "dyn_update", "session": sid, "ops": stream[0]})
    drive(d)
    job = d.jobs[jid]
    assert job.state == "done"
    doc = job.result
    assert doc["repinned_from_epoch"] == 0
    assert doc["epoch"] == 1
    ref = local_reference(graph, stream[:1]).query_components()
    assert doc["n_components"] == ref.n_components
    assert doc["labels"] == [int(x) for x in ref.labels]


def test_fresh_job_carries_no_repin_marker(graph_file, tmp_path):
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file)
    jid = dyn_query(d, sid, "components", if_stale="requeue")
    drive(d)
    assert "repinned_from_epoch" not in d.jobs[jid].result


def test_query_after_close_fails_session_closed(graph_file, tmp_path):
    d = threadless(tmp_path)
    sid = dyn_open(d, graph_file)
    jid = dyn_query(d, sid, "components")
    d.handle_request({"op": "dyn_close", "session": sid})
    drive(d)
    job = d.jobs[jid]
    assert job.state == "failed"
    assert job.error_type == "SessionClosed"
    assert d.handle_request({"op": "result",
                             "job": jid})["error"] == "SessionClosed"


# -- restart resume -----------------------------------------------------------


def test_restart_replays_update_log_bit_identically(
        graph, graph_file, stream, tmp_path):
    state = str(tmp_path / "state")
    d1 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    sid = dyn_open(d1, graph_file, seed=0, p=4)
    for ops in stream[:4]:
        d1.handle_request({"op": "dyn_update", "session": sid, "ops": ops})
    del d1                                      # simulated kill

    d2 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    st = d2.handle_request({"op": "dyn_staleness", "session": sid})
    assert st["epoch"] == 4                     # resumed mid-stream
    for ops in stream[4:]:
        d2.handle_request({"op": "dyn_update", "session": sid, "ops": ops})
    jid = dyn_query(d2, sid, "components")
    drive(d2)
    doc = d2.jobs[jid].result
    ref = local_reference(graph, stream).query_components()
    assert doc["epoch"] == len(stream)
    assert doc["n_components"] == ref.n_components
    assert doc["labels"] == [int(x) for x in ref.labels]


def test_restart_replays_resparsify_events(graph, graph_file, stream,
                                           tmp_path):
    """Approx answers after a restart match the uninterrupted run.

    Rebuilds are query-triggered, so the session's write-ahead log
    records them; a resumed daemon must re-trigger each one during
    replay to keep the sparsifier base (and so every later approx
    answer) bit-identical.
    """
    knobs = dict(seed=0, p=4, drift_threshold=0.05, trial_scale=0.2)

    def stream_with_queries(d, sid, batches):
        sha = None
        for ops in batches:
            d.handle_request({"op": "dyn_update", "session": sid,
                              "ops": ops})
            jid = dyn_query(d, sid, "cut", mode="approx")
            drive(d)
            sha = d.jobs[jid].result["certificate"]["sparsifier_sha256"]
        return sha

    # uninterrupted reference
    d0 = Daemon(ServeConfig(bind="", state_dir=str(tmp_path / "s0"),
                            backend="sim"))
    s0 = dyn_open(d0, graph_file, **knobs)
    ref_sha = stream_with_queries(d0, s0, stream)
    assert d0.dynamic.get(s0).dyn.counters["resparsifications"] >= 2

    # killed after 3 batches, restarted, streams the rest
    state = str(tmp_path / "state")
    d1 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    sid = dyn_open(d1, graph_file, **knobs)
    stream_with_queries(d1, sid, stream[:3])
    del d1
    d2 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    got_sha = stream_with_queries(d2, sid, stream[3:])
    assert got_sha == ref_sha
    jid = dyn_query(d2, sid, "cut", mode="exact")
    drive(d2)
    ref = local_reference(graph, stream, **{k: v for k, v in knobs.items()
                                            if k not in ("seed", "p")})
    assert d2.jobs[jid].result["value"] == \
        ref.query_cut(mode="exact").value


def test_resume_skips_sessions_with_missing_graph(graph_file, tmp_path):
    import os

    state = str(tmp_path / "state")
    d1 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    sid = dyn_open(d1, graph_file)
    del d1
    os.unlink(graph_file)
    d2 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    assert d2.dynamic.get(sid) is None          # unrecoverable, not crashed
    reply = d2.handle_request({"op": "dyn_staleness", "session": sid})
    assert reply["error"] == "ProtocolError"


# -- live socket daemon -------------------------------------------------------


def test_live_stream_interleaved_queries_match_local(
        graph, graph_file, stream, tmp_path):
    cfg = ServeConfig(bind=str(tmp_path / "s.sock"),
                      state_dir=str(tmp_path / "state"), backend="sim",
                      p=4)
    local = DynamicGraph(graph, p=4, seed=0, backend="sim")
    with Daemon(cfg) as daemon:
        wait_server(daemon.address)
        with Client(daemon.address, client="t") as c:
            sid = c.dyn_open(graph_file, seed=0, p=4)
            for ops in stream:
                st = c.dyn_update(sid, ops)
                local.update_edges(ops)
                doc = c.dyn_components(sid)
                ref = local.query_components()
                assert doc["epoch"] == st["epoch"] == local.epoch
                assert doc["n_components"] == ref.n_components
                assert doc["labels"] == [int(x) for x in ref.labels]
            stale = c.dyn_staleness(sid)
            assert stale["epoch"] == len(stream)
            with pytest.raises(ServeError) as err:
                c.dyn_query("dXXXXXX", "components")
            assert err.value.error == "ProtocolError"
            assert c.dyn_close(sid)["closed"]


def test_live_concurrent_updates_and_queries_converge(
        graph, graph_file, stream, tmp_path):
    """A writer streams batches while a reader polls components.

    Every reader answer must certify a real epoch and match a local
    replay truncated to that epoch (bounded staleness: never a torn or
    mid-batch view).
    """
    cfg = ServeConfig(bind=str(tmp_path / "s.sock"),
                      state_dir=str(tmp_path / "state"), backend="sim",
                      p=4)
    refs = {}  # per-epoch local reference answers
    local = DynamicGraph(graph, p=4, seed=0, backend="sim")
    refs[0] = local.query_components()
    for i, ops in enumerate(stream, start=1):
        local.update_edges(ops)
        refs[i] = local.query_components()

    answers = []
    with Daemon(cfg) as daemon:
        wait_server(daemon.address)
        with Client(daemon.address, client="w") as w:
            sid = w.dyn_open(graph_file, seed=0, p=4)

            def read():
                # "requeue": a poll racing a writer answers the live
                # epoch instead of failing with StaleEpoch
                with Client(daemon.address, client="r") as r:
                    for _ in range(4):
                        answers.append(
                            r.dyn_components(sid, if_stale="requeue"))

            t = threading.Thread(target=read)
            t.start()
            for ops in stream:
                w.dyn_update(sid, ops)
            t.join(120)
            answers.append(w.dyn_components(sid))
    assert answers[-1]["epoch"] == len(stream)
    for doc in answers:
        ref = refs[doc["epoch"]]
        assert doc["n_components"] == ref.n_components
        assert doc["labels"] == [int(x) for x in ref.labels]
