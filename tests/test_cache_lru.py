"""Tests for the block-level LRU cache simulator."""

import numpy as np
import pytest

from repro.cache import LRUCache


class TestLRUCache:
    def test_sequential_scan_misses(self):
        c = LRUCache(M=64, B=8)
        c.access_range(0, 64)
        assert c.misses == 8  # one per block
        assert c.accesses == 64

    def test_rescan_hits_when_fits(self):
        c = LRUCache(M=64, B=8)
        c.access_range(0, 64)
        c.access_range(0, 64)
        assert c.misses == 8  # second scan fully cached

    def test_rescan_misses_when_too_big(self):
        c = LRUCache(M=64, B=8)  # 8 blocks capacity
        c.access_range(0, 128)   # 16 blocks: evicts the first half
        c.access_range(0, 128)
        assert c.misses == 32    # LRU keeps evicting ahead of the scan

    def test_single_word_repeat(self):
        c = LRUCache(M=64, B=8)
        c.access(np.array([3, 3, 3, 3]))
        assert c.misses == 1
        assert c.accesses == 4

    def test_same_block_different_words(self):
        c = LRUCache(M=64, B=8)
        c.access(np.array([0, 7]))  # same block
        assert c.misses == 1

    def test_eviction_order_is_lru(self):
        c = LRUCache(M=16, B=8)  # 2 blocks
        c.access(0)    # block 0
        c.access(8)    # block 1
        c.access(0)    # touch block 0 (now MRU)
        c.access(16)   # block 2 evicts block 1
        c.access(0)    # hit
        assert c.misses == 3
        c.access(8)    # block 1 was evicted: miss
        assert c.misses == 4

    def test_flush(self):
        c = LRUCache(M=64, B=8)
        c.access_range(0, 8)
        c.flush()
        c.access_range(0, 8)
        assert c.misses == 2

    def test_reset_counters_keeps_contents(self):
        c = LRUCache(M=64, B=8)
        c.access_range(0, 8)
        c.reset_counters()
        c.access_range(0, 8)
        assert c.misses == 0

    def test_scalar_access(self):
        c = LRUCache(M=64, B=8)
        c.access(5)
        assert c.accesses == 1 and c.misses == 1

    def test_empty_access(self):
        c = LRUCache(M=64, B=8)
        c.access(np.zeros(0, dtype=np.int64))
        assert c.accesses == 0

    def test_negative_address_rejected(self):
        c = LRUCache(M=64, B=8)
        with pytest.raises(ValueError):
            c.access(-1)
        with pytest.raises(ValueError):
            c.access_range(-2, 5)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LRUCache(M=4, B=8)
        with pytest.raises(ValueError):
            LRUCache(M=8, B=0)

    def test_resident_blocks_bounded(self):
        c = LRUCache(M=32, B=8)
        c.access_range(0, 1000)
        assert c.resident_blocks <= 4

    def test_capacity_one_block(self):
        c = LRUCache(M=8, B=8)
        c.access(0)
        c.access(8)
        c.access(0)
        assert c.misses == 3  # ping-pong, capacity 1
