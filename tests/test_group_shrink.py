"""Group-shrink: bit-parity, trace shape, and faults in shrunk groups.

The shrink path (``cc_kernel(shrink=True)``) releases processors whose
edge slice contracted away: the group splits to the active ranks and the
idle ones wait at one closing broadcast.  These tests pin the contract:

* results are bit-identical with shrink on or off, for every processor
  count and on both backends,
* the shrunk trace contains the ``split`` collective and the released
  ranks finish with strictly fewer supersteps (the idle barrier waits
  they no longer pay), while active ranks' work charges are unchanged,
* the parity boundary is enforced: the hybrid CC finish and the exact
  min-cut pipeline refuse/lack ``shrink=`` (their schedules feed group
  membership into RNG stream assignment — see ``docs/fusion.md``),
* a worker crash *inside a shrunk group* surfaces as the same typed
  error, with the same message, as on the simulator.

The workload is a duplicated path whose rare single-copy bridge edges
survive the first sampling round on few ranks — the deterministic
shrink trigger (same construction as ``benchmarks/bench_fusion.py``).
"""

import dataclasses

import numpy as np
import pytest

from repro.core import approx_minimum_cut, connected_components, minimum_cut
from repro.faults import FaultSpec
from repro.graph.edgelist import EdgeList
from repro.runtime import MpBackend, SimBackend, WorkerCrashError
from repro.trace import FINAL, RecordingTracer
from tests.conftest import require_mp


def bridge_path_graph(n=600, rep=40, gaps=3) -> EdgeList:
    """Duplicated path with rare single-copy bridges appended last."""
    step = max(2, n // (gaps + 1))
    gap_set = {step * (i + 1) for i in range(gaps) if step * (i + 1) < n - 1}
    uu, vv = [], []
    for i in range(n - 1):
        if i in gap_set:
            continue
        uu.extend([i] * rep)
        vv.extend([i + 1] * rep)
    for i in sorted(gap_set):
        uu.append(i)
        vv.append(i + 1)
    return EdgeList(n, np.array(uu, dtype=np.int64),
                    np.array(vv, dtype=np.int64),
                    canonical=False, validate=False)


@pytest.fixture(scope="module")
def graph():
    return bridge_path_graph()


def traced_cc(g, p, *, shrink, fuse=None, backend_cls=SimBackend):
    tracer = RecordingTracer()
    res = connected_components(g, p, seed=0, shrink=shrink,
                               backend=backend_cls(tracer=tracer, fuse=fuse))
    return res, tracer.events()


def rank_supersteps(events):
    """rank -> final superstep count, from the FINAL flush record."""
    final = [ev for ev in events if ev.kind == FINAL][-1]
    return {r: snap for r, snap in
            zip(final.participants, final.supersteps)}


class TestParity:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_cc_bit_identical(self, graph, p):
        base = connected_components(graph, p, seed=0, shrink=False)
        shrunk = connected_components(graph, p, seed=0, shrink=True)
        assert np.array_equal(base.labels, shrunk.labels)
        assert base.n_components == shrunk.n_components

    @pytest.mark.parametrize("p", [2, 4])
    def test_appmc_bit_identical(self, graph, p):
        base = approx_minimum_cut(graph, p, seed=0, shrink=False)
        shrunk = approx_minimum_cut(graph, p, seed=0, shrink=True)
        assert base.estimate == shrunk.estimate

    def test_work_charges_unchanged_for_active_ranks(self, graph):
        """Shrink only removes idle waits: computation, volume and misses
        of the whole run change only by the split/rejoin bookkeeping, and
        the root's relabel work is identical."""
        base = connected_components(graph, 4, seed=0, shrink=False)
        shrunk = connected_components(graph, 4, seed=0, shrink=True)
        assert shrunk.report.total_ops < base.report.total_ops
        assert shrunk.report.p == base.report.p


class TestTraceShape:
    def test_split_fires_and_releases_ranks(self, graph):
        base, base_ev = traced_cc(graph, 4, shrink=False)
        shrunk, shrunk_ev = traced_cc(graph, 4, shrink=True)
        base_kinds = [ev.kind for ev in base_ev]
        shrunk_kinds = [ev.kind for ev in shrunk_ev]
        assert "split" not in base_kinds
        assert "split" in shrunk_kinds, (
            "the bridge-path workload must trigger group-shrink; if the "
            "sampler changed, retune bridge_path_graph"
        )
        shrunk_ss = rank_supersteps(shrunk_ev)
        # Released ranks stop at the split while active ranks keep
        # synchronizing: their final superstep counts must diverge.
        assert min(shrunk_ss.values()) < max(shrunk_ss.values())
        # Without fusion the shrink protocol's own collectives (the
        # per-round activity allgather, the split, the closing rejoin)
        # offset what the released ranks save, so released ranks only
        # break even against the unshrunk run...
        base_ss = rank_supersteps(base_ev)
        assert min(shrunk_ss.values()) <= min(base_ss.values())
        assert np.array_equal(base.labels, shrunk.labels)

    def test_fused_shrink_releases_ranks_strictly(self, graph):
        """...but with fusion on, the shrink-check allgather merges into
        the round's superstep and the released ranks finish with strictly
        fewer supersteps than any rank of the fused unshrunk run."""
        base, base_ev = traced_cc(graph, 4, shrink=False, fuse=True)
        shrunk, shrunk_ev = traced_cc(graph, 4, shrink=True, fuse=True)
        base_ss = rank_supersteps(base_ev)
        shrunk_ss = rank_supersteps(shrunk_ev)
        assert min(shrunk_ss.values()) < min(base_ss.values())
        assert np.array_equal(base.labels, shrunk.labels)
        assert base.n_components == shrunk.n_components

    def test_shrunk_groups_appear_in_trace(self, graph):
        _res, events = traced_cc(graph, 4, shrink=True)
        sizes = {len(ev.participants) for ev in events if ev.kind != FINAL}
        assert any(s < 4 for s in sizes), (
            "post-split collectives must run on the shrunk group"
        )


class TestParityBoundary:
    def test_hybrid_rejects_shrink(self, graph):
        with pytest.raises(ValueError, match="iterated-sampling"):
            connected_components(graph, 4, seed=0, hybrid=True, shrink=True)

    def test_exact_mincut_has_no_shrink(self, graph):
        # Deliberate API absence, not an omission: the eager splitter
        # exchange and the recursion's group halving feed Philox stream
        # assignment, so a shrunk group would change sampled edges.
        with pytest.raises(TypeError):
            minimum_cut(graph, 2, seed=0, trials=2, shrink=True)


class TestMpShrink:
    def test_mp_matches_sim(self, graph):
        require_mp()
        sim, sim_ev = traced_cc(graph, 4, shrink=True)
        mp, mp_ev = traced_cc(graph, 4, shrink=True, backend_cls=MpBackend)
        assert np.array_equal(sim.labels, mp.labels)
        assert sim.report == mp.report
        strip = lambda evs: [dataclasses.replace(e, wall_s=0.0)
                             for e in evs]
        assert strip(sim_ev) == strip(mp_ev)

    def test_crash_in_shrunk_group_raises_typed_error(self, graph):
        """A rank that crashes *after* the split — inside the shrunk
        group — must surface as the same WorkerCrashError, with the same
        message, as the simulator's deterministic injection."""
        require_mp()
        from repro.core.components import cc_program

        # Find a step index that is provably after the split fired.
        _res, events = traced_cc(graph, 4, shrink=True)
        split_ev = next(ev for ev in events if ev.kind == "split")
        crash_rank = split_ev.participants[0]  # stays active post-split
        crash_step = max(split_ev.supersteps) + 2
        assert any(ev.kind != FINAL and crash_rank in ev.participants
                   and max(ev.supersteps) > crash_step for ev in events), \
            "crash step must land before the program ends"

        slices = graph.slices(4)
        faults = [FaultSpec("crash", rank=crash_rank, step=crash_step)]

        def msg(backend):
            with pytest.raises(WorkerCrashError) as exc_info:
                backend.run(cc_program, 4, seed=0, args=(slices, graph.n),
                            kwargs={"shrink": True}, faults=faults)
            assert exc_info.value.rank == crash_rank
            return str(exc_info.value)

        assert msg(SimBackend()) == msg(MpBackend())
