"""Tests for the trial ledger: lifecycle, fold, checkpoint, fingerprint."""

import json
import math

import numpy as np
import pytest

from repro.sched import TrialLedger, decode_side, encode_side
from repro.sched.ledger import LEDGER_MAGIC


def _side(bits):
    return np.array(bits, dtype=bool)


class TestSideCodec:
    @pytest.mark.parametrize("n", [1, 7, 8, 9, 64, 65])
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        side = rng.random(n) < 0.5
        assert np.array_equal(decode_side(encode_side(side), n), side)

    def test_encoding_is_canonical_text(self):
        assert encode_side(_side([1, 0, 0, 0, 0, 0, 0, 0])) == "80"


class TestLifecycle:
    def test_new_ledger_all_pending(self):
        led = TrialLedger(4, n=10, m=20, seed=1)
        assert led.pending_ids() == [0, 1, 2, 3]
        assert led.completed == 0

    def test_running_and_failed_count_as_pending(self):
        led = TrialLedger(3, n=10, m=20, seed=1)
        led.mark_running([0], wave=0)
        led.mark_failed([1])
        led.record_done(2, 5.0, _side([1] * 10))
        assert led.pending_ids() == [0, 1]
        assert led.completed == 1

    def test_attempts_accumulate(self):
        led = TrialLedger(1, n=4, m=4, seed=0)
        led.mark_running([0], wave=0)
        led.mark_pending([0])
        led.mark_running([0], wave=0)
        assert led.records[0].attempts == 2

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            TrialLedger(0, n=4, m=4, seed=0)


class TestBestFold:
    def test_minimum_in_trial_order(self):
        led = TrialLedger(3, n=4, m=4, seed=0)
        led.record_done(0, 5.0, _side([1, 0, 0, 0]))
        led.record_done(1, 2.0, _side([0, 1, 0, 0]))
        led.record_done(2, 9.0, _side([0, 0, 1, 0]))
        value, side = led.best()
        assert value == 2.0
        assert np.array_equal(side, _side([0, 1, 0, 0]))

    def test_ties_keep_lowest_trial_id(self):
        led = TrialLedger(2, n=4, m=4, seed=0)
        led.record_done(1, 2.0, _side([0, 1, 0, 0]))
        led.record_done(0, 2.0, _side([0, 0, 1, 0]))
        _, side = led.best()
        assert np.array_equal(side, _side([0, 0, 1, 0]))

    def test_empty_ledger_best(self):
        value, side = TrialLedger(2, n=4, m=4, seed=0).best()
        assert value == math.inf and side is None


class TestMinCutSides:
    def test_union_over_min_value_trials(self):
        led = TrialLedger(3, n=4, m=4, seed=0)
        a, b = _side([0, 1, 0, 0]), _side([0, 0, 1, 0])
        led.record_done(0, 2.0, a, sides=[a])
        led.record_done(1, 2.0, b, sides=[b, a])
        led.record_done(2, 7.0, _side([0, 0, 0, 1]),
                        sides=[_side([0, 0, 0, 1])])
        sides = led.min_cut_sides()
        assert len(sides) == 2  # a and b, deduplicated; trial 2 excluded

    def test_complement_counts_once(self):
        led = TrialLedger(2, n=4, m=4, seed=0)
        a = _side([0, 1, 0, 0])
        led.record_done(0, 2.0, a, sides=[a])
        led.record_done(1, 2.0, ~a, sides=[~a])
        assert len(led.min_cut_sides()) == 1


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        led = TrialLedger(3, n=6, m=9, seed=42)
        led.record_done(1, 3.5, _side([0, 1, 1, 0, 0, 0]))
        led.mark_running([2], wave=1)
        led.save(path)
        again = TrialLedger.load(path)
        assert again.matches(trials=3, n=6, m=9, seed=42)
        assert again.fingerprint() == led.fingerprint()
        assert again.records[1].value == 3.5
        assert again.pending_ids() == [0, 2]

    def test_header_is_first_line(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        TrialLedger(1, n=2, m=1, seed=0).save(path)
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["kind"] == LEDGER_MAGIC

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "other"}\n')
        with pytest.raises(ValueError, match="not a trial-ledger"):
            TrialLedger.load(str(path))

    def test_missing_records_rejected(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        led = TrialLedger(3, n=2, m=1, seed=0)
        del led.records[1]
        led.save(path)
        with pytest.raises(ValueError, match="missing trial record"):
            TrialLedger.load(path)

    def test_save_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        led = TrialLedger(2, n=2, m=1, seed=0)
        led.save(path)
        led.record_done(0, 1.0, _side([0, 1]))
        led.save(path)  # overwrites via tmp + rename
        assert TrialLedger.load(path).completed == 1
        assert list(tmp_path.iterdir()) == [tmp_path / "ledger.jsonl"]


class TestFingerprint:
    def test_excludes_attempts_and_wave(self):
        a = TrialLedger(2, n=4, m=4, seed=0)
        b = TrialLedger(2, n=4, m=4, seed=0)
        for led, times in ((a, 1), (b, 3)):
            for _ in range(times):
                led.mark_running([0, 1], wave=times)
                led.mark_pending([0, 1])
            led.record_done(0, 1.0, _side([0, 1, 0, 0]))
            led.record_done(1, 2.0, _side([0, 0, 1, 0]))
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_results(self):
        a = TrialLedger(1, n=4, m=4, seed=0)
        b = TrialLedger(1, n=4, m=4, seed=0)
        a.record_done(0, 1.0, _side([0, 1, 0, 0]))
        b.record_done(0, 2.0, _side([0, 1, 0, 0]))
        assert a.fingerprint() != b.fingerprint()

    def test_sensitive_to_identity(self):
        assert (TrialLedger(1, n=4, m=4, seed=0).fingerprint()
                != TrialLedger(1, n=4, m=4, seed=1).fingerprint())
