"""WarmMpBackend: persistent worker pool parity, warmth, crash recovery.

Every test needs real OS processes; all skip gracefully where fork/exec
or /dev/shm are unavailable (``require_mp``).
"""

import os
import sys

import numpy as np
import pytest

from tests.conftest import require_mp
from repro.faults import FaultSpec
from repro.graph import erdos_renyi
from repro.harness.experiment import run_algorithm
from repro.rng import philox_stream
from repro.runtime import WarmMpBackend
from repro.runtime.base import available_backends, resolve_backend
from repro.runtime.errors import WorkerCrashError

needs_dev_shm = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="needs /dev/shm"
)


@pytest.fixture
def g():
    return erdos_renyi(60, 300, philox_stream(3), weighted=True)


def _shm_entries() -> set:
    return set(os.listdir("/dev/shm"))


def test_warm_is_registered():
    assert "warm" in available_backends()
    backend = resolve_backend("warm")
    assert isinstance(backend, WarmMpBackend)
    backend.close()


def test_warm_parity_with_sim_and_pool_stays_warm(g):
    require_mp()
    with WarmMpBackend() as warm:
        results = [run_algorithm("parallel_cc", g, p=2, seed=5,
                                 backend=warm) for _ in range(3)]
        sq = run_algorithm("square_root", g, p=2, seed=7, backend=warm)
        assert warm.pool_spawns == 1        # one spawn across all runs
    sim_cc = run_algorithm("parallel_cc", g, p=2, seed=5, backend="sim")
    sim_sq = run_algorithm("square_root", g, p=2, seed=7, backend="sim")
    for res in results:
        assert np.array_equal(res.labels, sim_cc.labels)
        assert res.report == sim_cc.report
    assert sq.value == sim_sq.value


def test_warm_scheduled_run_bit_identical_to_sim(g):
    require_mp()
    from repro.sched import TrialScheduler

    with WarmMpBackend() as warm:
        warm_res = TrialScheduler(wave_size=16).run(
            g, 2, backend=warm, seed=7)
        assert warm.pool_spawns == 1        # waves share one pool
    sim_res = TrialScheduler(wave_size=16).run(g, 2, backend="sim", seed=7)
    assert warm_res.value == sim_res.value
    assert warm_res.ledger.fingerprint() == sim_res.ledger.fingerprint()


def test_crash_discards_pool_then_respawns_transparently(g):
    require_mp()
    from repro.sched import TrialScheduler

    with WarmMpBackend() as warm:
        clean = TrialScheduler(wave_size=16).run(g, 2, backend=warm, seed=7)
        assert warm.pool_spawns == 1
        with pytest.raises(WorkerCrashError):
            warm.run(_crash_program, 2, seed=0,
                     faults=[FaultSpec("crash", rank=1, step=0)])
        assert warm._pool is None           # wedged peers discarded
        again = TrialScheduler(wave_size=16).run(g, 2, backend=warm, seed=7)
        assert warm.pool_spawns == 2        # fresh pool, same bits
    assert again.ledger.fingerprint() == clean.ledger.fingerprint()


def test_p_change_respawns(g):
    require_mp()
    with WarmMpBackend() as warm:
        run_algorithm("parallel_cc", g, p=2, seed=5, backend=warm)
        run_algorithm("parallel_cc", g, p=2, seed=5, backend=warm)
        assert warm.pool_spawns == 1
        run_algorithm("parallel_cc", g, p=3, seed=5, backend=warm)
        assert warm.pool_spawns == 2


@needs_dev_shm
def test_close_leaves_no_shm_and_is_idempotent(g):
    require_mp()
    before = _shm_entries()
    warm = WarmMpBackend()
    run_algorithm("parallel_cc", g, p=2, seed=5, backend=warm)
    warm.close()
    warm.close()
    assert _shm_entries() - before == set()


def _crash_program(ctx):
    import operator

    data = np.ones(4)
    total = yield from ctx.comm.allreduce(data, op=operator.add)
    return float(total[0])
