"""Shared fixtures: deterministic RNGs, small graphs, backend selection."""

import functools

import numpy as np
import pytest

from repro.graph import (
    EdgeList,
    erdos_renyi,
    two_cliques_bridge,
    watts_strogatz,
)
from repro.rng import philox_stream


@functools.lru_cache(maxsize=1)
def mp_available() -> bool:
    """Whether this environment can run real worker processes.

    Sandboxes sometimes forbid fork/exec or strip /dev/shm; probe once with
    a trivial child so mp-backend tests skip gracefully instead of erroring.
    """
    import multiprocessing

    try:
        proc = multiprocessing.get_context().Process(target=int, daemon=True)
        proc.start()
        proc.join(30)
        return proc.exitcode == 0
    except Exception:
        return False


def require_mp():
    """Skip the calling test when worker processes cannot be spawned."""
    if not mp_available():
        pytest.skip("real worker processes unavailable in this environment")


@pytest.fixture(params=["sim", "mp"])
def backend(request):
    """Run the test once per execution backend, skipping mp if unusable."""
    if request.param == "mp":
        require_mp()
    return request.param


@pytest.fixture
def rng():
    """Fresh deterministic generator for each test."""
    return philox_stream(12345)


@pytest.fixture
def small_er(rng):
    """Small Erdős–Rényi graph with a few components."""
    return erdos_renyi(200, 300, rng)


@pytest.fixture
def small_er_weighted(rng):
    """Small weighted connected-ish ER graph."""
    return erdos_renyi(60, 400, rng, weighted=True)


@pytest.fixture
def small_ws(rng):
    """Connected small-world graph."""
    return watts_strogatz(128, 6, rng)


@pytest.fixture
def bridge_graph():
    """Two K8 cliques joined by one weight-2 bridge (min cut 2)."""
    return two_cliques_bridge(8, bridge_weight=2.0)


@pytest.fixture
def tiny_path():
    """Path on 4 vertices (min cut 1, one component)."""
    return EdgeList.from_pairs(4, [(0, 1), (1, 2), (2, 3)])


def assert_same_partition(g: EdgeList, labels_a: np.ndarray, labels_b: np.ndarray):
    """Two labelings describe the same partition iff they agree pairwise on
    edges *and* have the same number of classes."""
    assert np.unique(labels_a).size == np.unique(labels_b).size
    same_a = labels_a[g.u] == labels_a[g.v]
    same_b = labels_b[g.u] == labels_b[g.v]
    assert (same_a == same_b).all()
