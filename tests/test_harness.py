"""Tests for the measurement harness and reporting."""

import json

import numpy as np
import pytest

from repro.harness import (
    Datapoint,
    Series,
    format_table,
    measure,
    median_ci,
    write_experiment_record,
)


class TestMedianCI:
    def test_single_value(self):
        assert median_ci([3.0]) == (3.0, 3.0)

    def test_symmetric_data(self):
        lo, hi = median_ci(list(range(1, 100)))
        assert lo <= 50 <= hi
        assert hi - lo < 25

    def test_ci_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        small = rng.normal(10, 1, 10).tolist()
        large = rng.normal(10, 1, 200).tolist()
        lo_s, hi_s = median_ci(small)
        lo_l, hi_l = median_ci(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_ci([])


class TestMeasure:
    def test_constant_metric_stops_early(self):
        calls = []

        def metric(seed):
            calls.append(seed)
            return 5.0

        dp = measure(metric, min_repetitions=5, max_repetitions=31)
        assert dp.median == 5.0
        assert dp.repetitions == 5
        assert dp.ci_ok

    def test_seeds_are_consecutive(self):
        seen = []
        measure(lambda s: seen.append(s) or 1.0, seed_base=100,
                min_repetitions=3, max_repetitions=3)
        assert seen == [100, 101, 102]

    def test_noisy_metric_adds_repetitions(self):
        rng = np.random.default_rng(1)

        def metric(seed):
            return float(rng.uniform(1, 100))

        dp = measure(metric, min_repetitions=5, max_repetitions=15)
        assert dp.repetitions > 5

    def test_max_repetitions_respected(self):
        rng = np.random.default_rng(2)
        dp = measure(lambda s: float(rng.uniform(0, 1e6)),
                     min_repetitions=3, max_repetitions=7)
        assert dp.repetitions <= 7

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            measure(lambda s: 1.0, min_repetitions=0)
        with pytest.raises(ValueError):
            measure(lambda s: 1.0, min_repetitions=5, max_repetitions=2)

    def test_datapoint_ci_ok_zero(self):
        dp = Datapoint(median=0.0, ci_low=0.0, ci_high=0.0, repetitions=5)
        assert dp.ci_ok


class TestSeries:
    def test_add_and_rows(self):
        s = Series("cc")
        s.add(1, 10.0)
        s.add(2, 5.0)
        assert s.as_rows() == [(1.0, 10.0), (2.0, 5.0)]


class TestFormatTable:
    def test_alignment(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        out = format_table("T", ["x"], [])
        assert "x" in out

    def test_float_formatting(self):
        out = format_table("T", ["v"], [[1234567.0], [0.0000123], [0.0]])
        assert "e+06" in out or "1.235e+06" in out
        assert "e-05" in out
        assert "0" in out


class TestExperimentRecord:
    def test_writes_json(self, tmp_path):
        path = write_experiment_record(
            "fig1", description="d", headers=["p", "t"],
            rows=[[1, np.float64(2.0)], [2, 1.0]],
            notes="n", results_dir=tmp_path,
        )
        data = json.loads(path.read_text())
        assert data["experiment"] == "fig1"
        assert data["rows"] == [[1, 2.0], [2, 1.0]]
        assert data["notes"] == "n"

    def test_creates_directory(self, tmp_path):
        path = write_experiment_record(
            "x", description="", headers=[], rows=[],
            results_dir=tmp_path / "nested" / "dir",
        )
        assert path.exists()
