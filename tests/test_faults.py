"""Tests for the deterministic fault-injection plan layer (repro.faults)."""

import json

import pytest

from repro.faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)


class TestFaultSpec:
    def test_defaults(self):
        s = FaultSpec("crash", rank=1, step=2)
        assert (s.wave, s.attempt) == (0, 0)
        assert s.exitcode == CRASH_EXIT_CODE

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", rank=0, step=0)

    @pytest.mark.parametrize("field,value", [
        ("rank", -1), ("step", -2), ("wave", -1), ("attempt", -3),
    ])
    def test_negative_indices_rejected(self, field, value):
        kw = {"kind": "crash", "rank": 0, "step": 0, field: value}
        with pytest.raises(ValueError):
            FaultSpec(**kw)

    @pytest.mark.parametrize("kind", ["stall", "delay"])
    def test_sleep_kinds_need_seconds(self, kind):
        with pytest.raises(ValueError, match="seconds > 0"):
            FaultSpec(kind, rank=0, step=0)
        assert FaultSpec(kind, rank=0, step=0, seconds=0.1).seconds == 0.1

    def test_work_needs_ops(self):
        with pytest.raises(ValueError, match="ops > 0"):
            FaultSpec("work", rank=0, step=0)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            FaultSpec("work", rank=0, step=0, ops=float("inf"))

    def test_all_kinds_constructible(self):
        extras = {"stall": {"seconds": 1.0}, "delay": {"seconds": 1.0},
                  "work": {"ops": 1.0}}
        for kind in FAULT_KINDS:
            FaultSpec(kind, rank=0, step=0, **extras.get(kind, {}))


class TestFaultPlan:
    def test_for_dispatch_scoping(self):
        plan = FaultPlan((
            FaultSpec("crash", rank=0, step=0),
            FaultSpec("crash", rank=1, step=0, wave=1),
            FaultSpec("crash", rank=2, step=0, attempt=1),
        ))
        assert [s.rank for s in plan.for_dispatch(0, 0)] == [0]
        assert [s.rank for s in plan.for_dispatch(1, 0)] == [1]
        assert [s.rank for s in plan.for_dispatch(0, 1)] == [2]
        assert plan.for_dispatch(2, 0) == ()

    def test_default_attempt_vanishes_on_retry(self):
        plan = FaultPlan((FaultSpec("crash", rank=0, step=0),))
        assert plan.for_dispatch(0, 0)
        assert not plan.for_dispatch(0, 1)

    def test_json_roundtrip(self):
        plan = FaultPlan((
            FaultSpec("stall", rank=1, step=3, seconds=0.5, wave=2),
            FaultSpec("crash", rank=0, step=0, exitcode=99),
        ))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_bool_and_len(self):
        assert not FaultPlan()
        assert len(FaultPlan((FaultSpec("crash", rank=0, step=0),))) == 1


class TestParseFaultPlan:
    def test_inline_single(self):
        plan = parse_fault_plan("crash:rank=1,step=2")
        assert plan.specs == (FaultSpec("crash", rank=1, step=2),)

    def test_inline_multi_with_aliases(self):
        plan = parse_fault_plan(
            "stall:rank=0,step=1,secs=0.25;work:rank=1,step=0,ops=5e4"
        )
        assert plan.specs[0].seconds == 0.25
        assert plan.specs[1].ops == 5e4

    def test_inline_scoping_fields(self):
        (s,) = parse_fault_plan("crash:rank=0,step=0,wave=2,attempt=1").specs
        assert (s.wave, s.attempt) == (2, 1)

    def test_json_string(self):
        text = json.dumps(
            {"faults": [{"kind": "drop", "rank": 1, "step": 4}]})
        assert parse_fault_plan(text).specs == (
            FaultSpec("drop", rank=1, step=4),)

    def test_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan((FaultSpec("crash", rank=3, step=1),))
        path.write_text(plan.to_json())
        assert parse_fault_plan(str(path)) == plan

    @pytest.mark.parametrize("bad", [
        "", "   ", "crash", "crash:", "crash:rank=1", "crash:step=1",
        "crash:rank=x,step=1", "crash:rank=1,step=1,nope=2",
        '{"nope": []}',
    ])
    def test_bad_plans_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_plan(bad)


class TestFaultInjector:
    def test_filters_by_rank_and_indexes_by_step(self):
        specs = (
            FaultSpec("crash", rank=1, step=2),
            FaultSpec("work", rank=1, step=0, ops=10.0),
            FaultSpec("crash", rank=0, step=2),
        )
        inj = FaultInjector(specs, rank=1)
        assert inj.active
        assert [s.kind for s in inj.at(0)] == ["work"]
        assert [s.kind for s in inj.at(2)] == ["crash"]
        assert inj.at(1) == []

    def test_inactive_for_other_ranks(self):
        inj = FaultInjector((FaultSpec("crash", rank=0, step=0),), rank=5)
        assert not inj.active
        assert inj.at(0) == []

    def test_empty_specs(self):
        assert not FaultInjector((), rank=0).active
