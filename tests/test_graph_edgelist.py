"""Tests for the EdgeList representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EdgeList


def simple_graph():
    return EdgeList.from_pairs(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 3.0)])


class TestConstruction:
    def test_from_pairs_unweighted(self):
        g = EdgeList.from_pairs(3, [(0, 1), (1, 2)])
        assert g.m == 2
        assert (g.w == 1.0).all()

    def test_from_pairs_weighted(self):
        g = simple_graph()
        assert g.m == 3
        assert g.total_weight() == 6.0

    def test_empty(self):
        g = EdgeList.empty(5)
        assert g.n == 5 and g.m == 0
        assert g.total_weight() == 0.0

    def test_canonicalizes_endpoints(self):
        g = EdgeList(3, np.array([2, 1]), np.array([0, 2]))
        assert (g.u <= g.v).all()

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            EdgeList.from_pairs(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            EdgeList(2, np.array([0]), np.array([2]))
        with pytest.raises(ValueError):
            EdgeList(2, np.array([-1]), np.array([1]))

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            EdgeList(2, np.array([0]), np.array([1]), np.array([0.0]))
        with pytest.raises(ValueError):
            EdgeList(2, np.array([0]), np.array([1]), np.array([-1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            EdgeList(3, np.array([0, 1]), np.array([1]))

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            EdgeList(-1, np.zeros(0, np.int64), np.zeros(0, np.int64))

    def test_parallel_edges_allowed(self):
        g = EdgeList.from_pairs(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert g.m == 2 and g.total_weight() == 3.0


class TestQueries:
    def test_degrees(self):
        g = simple_graph()
        assert g.degrees().tolist() == [1, 2, 2, 1]

    def test_weighted_degrees(self):
        g = simple_graph()
        assert g.weighted_degrees().tolist() == [2.0, 3.0, 4.0, 3.0]

    def test_average_degree(self):
        g = simple_graph()
        assert g.average_degree() == pytest.approx(1.5)
        assert EdgeList.empty(0).average_degree() == 0.0

    def test_copy_is_independent(self):
        g = simple_graph()
        h = g.copy()
        h.w[0] = 99.0
        assert g.w[0] == 2.0

    def test_select(self):
        g = simple_graph()
        h = g.select(np.array([0, 2]))
        assert h.m == 2
        assert h.total_weight() == 5.0
        assert h.n == g.n

    def test_as_tuples_roundtrip(self):
        g = simple_graph()
        h = EdgeList.from_pairs(4, g.as_tuples())
        assert g == h

    def test_equality(self):
        assert simple_graph() == simple_graph()
        assert simple_graph() != EdgeList.empty(4)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(simple_graph())

    def test_to_networkx(self):
        nxg = simple_graph().to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 3


class TestSlices:
    def test_slices_partition_edges(self):
        g = simple_graph()
        parts = g.slices(2)
        assert sum(s.m for s in parts) == g.m
        assert all(s.n == g.n for s in parts)

    def test_slices_more_procs_than_edges(self):
        g = simple_graph()
        parts = g.slices(10)
        assert sum(s.m for s in parts) == g.m

    def test_slices_balanced(self):
        g = EdgeList.from_pairs(10, [(i, i + 1) for i in range(9)])
        sizes = [s.m for s in g.slices(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_slices_invalid_p(self):
        with pytest.raises(ValueError):
            simple_graph().slices(0)

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=16, deadline=None)
    def test_slices_concatenation_identity(self, p):
        g = simple_graph()
        parts = g.slices(p)
        u = np.concatenate([s.u for s in parts])
        assert np.array_equal(u, g.u)


class TestCutValue:
    def test_path_cut(self):
        g = simple_graph()
        side = np.array([True, False, False, False])
        assert g.cut_value(side) == 2.0

    def test_middle_cut(self):
        g = simple_graph()
        side = np.array([True, True, False, False])
        assert g.cut_value(side) == 1.0

    def test_complement_symmetric(self):
        g = simple_graph()
        side = np.array([True, False, True, False])
        assert g.cut_value(side) == g.cut_value(~side)

    def test_rejects_empty_or_full(self):
        g = simple_graph()
        with pytest.raises(ValueError):
            g.cut_value(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            g.cut_value(np.ones(4, dtype=bool))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            simple_graph().cut_value(np.array([True, False]))


class TestPermute:
    def test_permute_preserves_multiset(self, rng):
        g = simple_graph()
        h = g.permute_edges(rng)
        assert sorted(h.as_tuples()) == sorted(g.as_tuples())
