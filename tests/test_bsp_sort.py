"""Tests for the distributed sample sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import run_spmd, distributed_sort


def run_sort(chunks, with_payload=False, p=None):
    """Run distributed_sort with per-rank input chunks; return global output."""
    p = p or len(chunks)

    def prog(ctx):
        keys = np.asarray(chunks[ctx.rank], dtype=np.int64)
        payloads = (keys * 100,) if with_payload else ()
        out_keys, out_payloads = yield from distributed_sort(
            ctx, ctx.comm, keys, payloads
        )
        return out_keys, out_payloads

    res = run_spmd(prog, p, seed=0)
    all_keys = np.concatenate([v[0] for v in res.values])
    all_payloads = (
        np.concatenate([v[1][0] for v in res.values]) if with_payload else None
    )
    return all_keys, all_payloads, res


class TestDistributedSort:
    def test_basic(self):
        keys, _, _ = run_sort([[5, 3], [9, 1], [7, 2]])
        assert keys.tolist() == [1, 2, 3, 5, 7, 9]

    def test_payload_follows_keys(self):
        keys, payload, _ = run_sort([[5, 3], [9, 1]], with_payload=True)
        assert np.array_equal(payload, keys * 100)

    def test_single_processor(self):
        keys, _, _ = run_sort([[4, 2, 8, 1]])
        assert keys.tolist() == [1, 2, 4, 8]

    def test_empty_input(self):
        keys, _, _ = run_sort([[], [], []])
        assert keys.size == 0

    def test_some_empty_slices(self):
        keys, _, _ = run_sort([[], [3, 1], []])
        assert keys.tolist() == [1, 3]

    def test_duplicates(self):
        keys, _, _ = run_sort([[2, 2, 2], [2, 2], [1, 3]])
        assert keys.tolist() == [1, 2, 2, 2, 2, 2, 3]

    def test_all_equal(self):
        keys, _, _ = run_sort([[7] * 5, [7] * 5, [7] * 5, [7] * 5])
        assert (keys == 7).all() and keys.size == 20

    def test_large_random(self):
        rng = np.random.default_rng(0)
        chunks = [rng.integers(0, 10_000, 500).tolist() for _ in range(8)]
        keys, _, res = run_sort(chunks)
        expected = np.sort(np.concatenate([np.array(c) for c in chunks]))
        assert np.array_equal(keys, expected)
        # O(1) supersteps: local sort + allgather + alltoall only
        assert res.report.supersteps <= 4

    def test_balanced_output(self):
        rng = np.random.default_rng(1)
        chunks = [rng.integers(0, 10**9, 1000).tolist() for _ in range(4)]

        def prog(ctx):
            keys = np.asarray(chunks[ctx.rank], dtype=np.int64)
            out, _ = yield from distributed_sort(ctx, ctx.comm, keys, ())
            return out.size

        sizes = run_spmd(prog, 4, seed=0).values
        assert max(sizes) < 3 * min(sizes) + 64  # oversampling keeps balance

    def test_rejects_2d_keys(self):
        def prog(ctx):
            out = yield from distributed_sort(ctx, ctx.comm, np.zeros((2, 2)), ())
            return out

        with pytest.raises(ValueError):
            run_spmd(prog, 1)

    def test_rejects_misaligned_payload(self):
        def prog(ctx):
            out = yield from distributed_sort(
                ctx, ctx.comm, np.array([1, 2]), (np.array([1]),)
            )
            return out

        with pytest.raises(ValueError):
            run_spmd(prog, 1)

    @given(st.lists(st.lists(st.integers(min_value=-1000, max_value=1000),
                             max_size=30), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_sortedness_property(self, chunks):
        keys, _, _ = run_sort(chunks)
        flat = sorted(x for c in chunks for x in c)
        assert keys.tolist() == flat
