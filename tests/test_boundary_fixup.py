"""Direct tests of the §4.1 boundary fix-up on split key classes.

The package's own sample sort routes equal keys to one processor, so these
cases can only be driven by feeding the fix-up hand-crafted globally sorted
distributions in which a key class straddles processor boundaries — the
situation the paper's steps 4-5 exist for.
"""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import run_spmd
from repro.bsp.combine import boundary_fixup


def run_fixup(distribution, op=operator.add):
    """``distribution``: per-rank (keys, values) locally-combined sorted runs."""

    def prog(ctx):
        keys = np.asarray(distribution[ctx.rank][0], dtype=np.int64)
        values = np.asarray(distribution[ctx.rank][1], dtype=np.float64)
        out = yield from boundary_fixup(ctx, ctx.comm, keys, values, op)
        return out

    res = run_spmd(prog, len(distribution), seed=0)
    keys = np.concatenate([v[0] for v in res.values])
    values = np.concatenate([v[1] for v in res.values])
    return keys, values


class TestBoundaryFixup:
    def test_class_split_across_two_ranks(self):
        # key 5 held by ranks 0 (as last) and 1 (as first)
        keys, values = run_fixup([
            ([1, 5], [1.0, 2.0]),
            ([5, 9], [3.0, 4.0]),
        ])
        assert keys.tolist() == [1, 5, 9]
        assert values.tolist() == [1.0, 5.0, 4.0]

    def test_class_spanning_middle_ranks_wholesale(self):
        # key 7 fills ranks 1 and 2 entirely; leftmost holder is rank 0
        keys, values = run_fixup([
            ([3, 7], [1.0, 1.0]),
            ([7], [10.0]),
            ([7], [100.0]),
            ([7, 8], [1000.0, 5.0]),
        ])
        assert keys.tolist() == [3, 7, 8]
        assert values.tolist() == [1.0, 1111.0, 5.0]

    def test_leftmost_holder_has_class_as_first_entry(self):
        keys, values = run_fixup([
            ([7], [1.0]),
            ([7, 9], [2.0, 3.0]),
        ])
        assert keys.tolist() == [7, 9]
        assert values.tolist() == [3.0, 3.0]

    def test_no_shared_classes_is_identity(self):
        keys, values = run_fixup([
            ([1, 2], [1.0, 2.0]),
            ([3, 4], [3.0, 4.0]),
        ])
        assert keys.tolist() == [1, 2, 3, 4]
        assert values.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_rank_emptied_by_fixup(self):
        keys, values = run_fixup([
            ([5], [1.0]),
            ([5], [2.0]),
            ([5], [3.0]),
        ])
        assert keys.tolist() == [5]
        assert values.tolist() == [6.0]

    def test_empty_ranks_between_holders(self):
        keys, values = run_fixup([
            ([5], [1.0]),
            ([], []),
            ([5, 6], [2.0, 7.0]),
        ])
        assert keys.tolist() == [5, 6]
        assert values.tolist() == [3.0, 7.0]

    def test_custom_operator(self):
        keys, values = run_fixup([
            ([5], [4.0]),
            ([5], [9.0]),
        ], op=max)
        assert keys.tolist() == [5]
        assert values.tolist() == [9.0]

    def test_two_boundary_classes_same_rank(self):
        # rank 1 shares its first key with rank 0 AND its last with rank 2
        keys, values = run_fixup([
            ([1], [1.0]),
            ([1, 2], [10.0, 20.0]),
            ([2], [30.0]),
        ])
        assert keys.tolist() == [1, 2]
        assert values.tolist() == [11.0, 50.0]

    @given(st.lists(st.lists(st.tuples(st.integers(0, 6),
                                       st.integers(1, 9)), max_size=8),
                    min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_fold_on_sorted_splits(self, proc_pairs):
        """Build a valid globally-sorted locally-combined distribution from
        arbitrary data, then check the fix-up's output against a dict fold."""
        flat = sorted(kv for pairs in proc_pairs for kv in pairs)
        # split the sorted sequence into len(proc_pairs) contiguous chunks
        p = len(proc_pairs)
        bounds = np.linspace(0, len(flat), p + 1).astype(int)
        dist = []
        expected: dict[int, float] = {}
        for k, v in flat:
            expected[k] = expected.get(k, 0.0) + v
        for i in range(p):
            chunk = flat[bounds[i]:bounds[i + 1]]
            # locally combine equal keys inside the chunk
            keys, values = [], []
            for k, v in chunk:
                if keys and keys[-1] == k:
                    values[-1] += v
                else:
                    keys.append(k)
                    values.append(float(v))
            dist.append((keys, values))
        keys, values = run_fixup(dist)
        got = dict(zip(keys.tolist(), values.tolist()))
        assert got == expected
