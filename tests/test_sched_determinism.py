"""End-to-end determinism: fault-free, crash+retry, and resume-halfway
scheduler runs produce bit-identical cut values and ledger fingerprints,
on both the simulator and the multiprocess backend."""

import pytest

from tests.conftest import require_mp
from repro.faults import parse_fault_plan
from repro.sched import TrialScheduler

SEED = 7
TRIALS = 6
P = 2

CRASH = "crash:rank=1,step=1"
ABANDON_WAVE_1 = (
    "crash:rank=0,step=0,wave=1,attempt=0;"
    "crash:rank=0,step=0,wave=1,attempt=1;"
    "crash:rank=0,step=0,wave=1,attempt=2"
)


def run_clean(g, backend):
    return TrialScheduler().run(g, P, backend=backend, seed=SEED,
                                trials=TRIALS)


def run_crash_retry(g, backend):
    sched = TrialScheduler(fault_plan=parse_fault_plan(CRASH), backoff_s=0.0)
    return sched.run(g, P, backend=backend, seed=SEED, trials=TRIALS)


def run_resume_halfway(g, backend, tmp_path):
    ck = str(tmp_path / "ledger.jsonl")
    TrialScheduler(
        wave_size=3, checkpoint=ck, backoff_s=0.0, on_failure="continue",
        fault_plan=parse_fault_plan(ABANDON_WAVE_1),
    ).run(g, P, backend=backend, seed=SEED, trials=TRIALS)
    return TrialScheduler(wave_size=3, checkpoint=ck).run(
        g, P, backend=backend, seed=SEED, trials=TRIALS, resume=True)


class TestSimScenarios:
    def test_crash_retry_matches_fault_free(self, bridge_graph):
        clean = run_clean(bridge_graph, "sim")
        faulty = run_crash_retry(bridge_graph, "sim")
        assert faulty.retries == 1
        assert faulty.value == clean.value == 2.0
        assert faulty.ledger.fingerprint() == clean.ledger.fingerprint()

    def test_resume_halfway_matches_fault_free(self, bridge_graph, tmp_path):
        clean = run_clean(bridge_graph, "sim")
        resumed = run_resume_halfway(bridge_graph, "sim", tmp_path)
        assert resumed.completed == TRIALS
        assert resumed.value == clean.value
        assert resumed.ledger.fingerprint() == clean.ledger.fingerprint()

    def test_repeated_runs_identical(self, bridge_graph):
        a = run_clean(bridge_graph, "sim")
        b = run_clean(bridge_graph, "sim")
        assert a.ledger.fingerprint() == b.ledger.fingerprint()


class TestMpScenarios:
    def test_fault_free_matches_sim(self, bridge_graph):
        require_mp()
        sim = run_clean(bridge_graph, "sim")
        mp = run_clean(bridge_graph, "mp")
        assert mp.value == sim.value
        assert mp.ledger.fingerprint() == sim.ledger.fingerprint()

    def test_crash_retry_matches_fault_free(self, bridge_graph):
        require_mp()
        clean = run_clean(bridge_graph, "mp")
        faulty = run_crash_retry(bridge_graph, "mp")
        assert faulty.retries == 1
        assert faulty.ledger.fingerprint() == clean.ledger.fingerprint()

    def test_resume_halfway_matches_fault_free(self, bridge_graph, tmp_path):
        require_mp()
        clean = run_clean(bridge_graph, "mp")
        resumed = run_resume_halfway(bridge_graph, "mp", tmp_path)
        assert resumed.completed == TRIALS
        assert resumed.ledger.fingerprint() == clean.ledger.fingerprint()

    def test_sim_checkpoint_finishable_on_mp(self, bridge_graph, tmp_path):
        """A ledger checkpointed under sim resumes cleanly under mp —
        per-trial streams are keyed by global trial id, not by backend."""
        require_mp()
        ck = str(tmp_path / "ledger.jsonl")
        TrialScheduler(
            wave_size=3, checkpoint=ck, backoff_s=0.0, on_failure="continue",
            fault_plan=parse_fault_plan(ABANDON_WAVE_1),
        ).run(bridge_graph, P, backend="sim", seed=SEED, trials=TRIALS)
        resumed = TrialScheduler(wave_size=3, checkpoint=ck).run(
            bridge_graph, P, backend="mp", seed=SEED, trials=TRIALS,
            resume=True)
        clean = run_clean(bridge_graph, "sim")
        assert resumed.ledger.fingerprint() == clean.ledger.fingerprint()
