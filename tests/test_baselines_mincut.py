"""Tests for the minimum-cut baselines (Stoer–Wagner, Karger–Stein)."""

import numpy as np
import pytest

from repro.baselines import karger_stein, stoer_wagner
from repro.baselines.karger_stein import ks_repetitions
from repro.cache import LRUTracker
from repro.graph import (
    AdjacencyMatrix,
    EdgeList,
    complete_graph,
    erdos_renyi,
    two_cliques_bridge,
    verification_suite,
    weighted_cycle,
)
from repro.graph.validate import networkx_components, networkx_mincut
from repro.rng import philox_stream


class TestStoerWagner:
    def test_verification_suite(self):
        for case in verification_suite():
            if case.mincut is None:
                continue
            val, side = stoer_wagner(case.graph)
            assert val == case.mincut, case.name
            assert case.graph.cut_value(side) == val, case.name

    def test_matches_networkx(self):
        for seed in range(5):
            g = erdos_renyi(30, 150, philox_stream(seed + 100), weighted=True)
            if networkx_components(g) != 1:
                continue
            val, side = stoer_wagner(g)
            assert val == networkx_mincut(g)
            assert g.cut_value(side) == val

    def test_accepts_matrix_input(self):
        g = weighted_cycle(8)
        a = AdjacencyMatrix.from_edgelist(g)
        val, _ = stoer_wagner(a)
        assert val == 2.0

    def test_disconnected_zero(self):
        g = EdgeList.from_pairs(5, [(0, 1), (2, 3)])
        val, side = stoer_wagner(g)
        assert val == 0.0
        assert g.cut_value(side) == 0.0

    def test_deterministic(self):
        g = erdos_renyi(25, 120, philox_stream(110), weighted=True)
        assert stoer_wagner(g)[0] == stoer_wagner(g)[0]

    def test_too_small(self):
        with pytest.raises(ValueError):
            stoer_wagner(EdgeList.empty(1))

    def test_instrumented_heavy_traffic(self):
        """SW streams the whole matrix per phase: many more misses than KS
        on the same input (the Figure 9 contrast)."""
        g = erdos_renyi(100, 400, philox_stream(111), weighted=True)
        mem_sw = LRUTracker(M=256, B=8)
        stoer_wagner(g, mem=mem_sw)
        mem_ks = LRUTracker(M=256, B=8)
        karger_stein(g, seed=0, repetitions=1, mem=mem_ks)
        # SW's n^3-word traffic vs KS's n^2 log n: the gap grows with n.
        assert mem_sw.miss_count > 1.3 * mem_ks.miss_count


class TestKargerSteinBaseline:
    def test_verification_suite(self):
        for case in verification_suite():
            if case.mincut is None:
                continue
            val, side = karger_stein(case.graph, seed=7)
            assert val == case.mincut, case.name
            assert case.graph.cut_value(side) == val

    def test_matches_stoer_wagner(self):
        for seed in range(3):
            g = erdos_renyi(35, 200, philox_stream(seed + 120), weighted=True)
            if networkx_components(g) != 1:
                continue
            assert karger_stein(g, seed=seed)[0] == stoer_wagner(g)[0]

    def test_accepts_matrix(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(7))
        val, _ = karger_stein(a, seed=1)
        assert val == 6.0

    def test_disconnected_short_circuit(self):
        g = EdgeList.from_pairs(6, [(0, 1), (3, 4)])
        val, side = karger_stein(g, seed=2)
        assert val == 0.0
        assert g.cut_value(side) == 0.0

    def test_repetitions_formula(self):
        assert ks_repetitions(2) >= 1
        assert ks_repetitions(10 ** 6) > ks_repetitions(100)
        assert ks_repetitions(100, success_prob=0.99) > \
            ks_repetitions(100, success_prob=0.5)
        with pytest.raises(ValueError):
            ks_repetitions(10, success_prob=0)

    def test_repetitions_override(self):
        g = two_cliques_bridge(5)
        val, _ = karger_stein(g, seed=3, repetitions=20)
        assert val == 1.0

    def test_too_small(self):
        with pytest.raises(ValueError):
            karger_stein(EdgeList.empty(1))

    def test_deterministic(self):
        g = erdos_renyi(20, 80, philox_stream(130), weighted=True)
        assert karger_stein(g, seed=5)[0] == karger_stein(g, seed=5)[0]
