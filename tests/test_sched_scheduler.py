"""Tests for the fault-tolerant trial scheduler (repro.sched.scheduler)."""

import numpy as np
import pytest

from repro.core.mincut import minimum_cut, minimum_cuts
from repro.faults import FaultPlan, FaultSpec, parse_fault_plan
from repro.harness import run_algorithm
from repro.runtime.errors import WorkerCrashError, WorkerFailure
from repro.runtime.sim import SimBackend
from repro.sched import (
    SCHED_DISPATCH,
    TrialScheduler,
    detect_stragglers,
    split_trace,
    wait_by_rank,
)
from repro.trace.events import TraceEvent
from repro.trace.report import aggregate_trace

SEED = 11
TRIALS = 6


def crash_plan(attempts, rank=1, step=1, wave=0):
    """A plan that crashes the dispatch on each of the given attempts."""
    return FaultPlan(tuple(
        FaultSpec("crash", rank=rank, step=step, wave=wave, attempt=a)
        for a in attempts
    ))


class TestHappyPath:
    def test_matches_legacy_minimum_cut_value(self, bridge_graph):
        legacy = minimum_cut(bridge_graph, p=2, seed=SEED, trials=TRIALS)
        res = TrialScheduler().run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        assert res.value == legacy.value == 2.0
        assert res.completed == res.trials == TRIALS
        assert res.dispatches == 1 and res.retries == 0

    def test_wave_batching_is_invariant(self, bridge_graph):
        whole = TrialScheduler().run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        waved = TrialScheduler(wave_size=2).run(
            bridge_graph, 2, seed=SEED, trials=TRIALS)
        single = TrialScheduler(wave_size=1).run(
            bridge_graph, 2, seed=SEED, trials=TRIALS)
        assert waved.dispatches == 3 and single.dispatches == TRIALS
        assert (whole.ledger.fingerprint() == waved.ledger.fingerprint()
                == single.ledger.fingerprint())

    def test_p_is_irrelevant_to_results(self, bridge_graph):
        a = TrialScheduler().run(bridge_graph, 1, seed=SEED, trials=TRIALS)
        b = TrialScheduler().run(bridge_graph, 3, seed=SEED, trials=TRIALS)
        assert a.ledger.fingerprint() == b.ledger.fingerprint()

    def test_achieved_meets_requested_for_full_budget(self, bridge_graph):
        res = TrialScheduler().run(bridge_graph, 2, seed=SEED,
                                   success_prob=0.9)
        assert res.completed == res.trials
        assert res.achieved_success_prob >= res.requested_success_prob

    def test_collect_all_matches_legacy_minimum_cuts(self, bridge_graph):
        legacy = minimum_cuts(bridge_graph, p=2, seed=SEED, trials=TRIALS)
        res = TrialScheduler().run(bridge_graph, 2, seed=SEED, trials=TRIALS,
                                   collect_all=True)
        assert res.value == legacy.value
        legacy_keys = {s.tobytes() for s in legacy.sides}
        sched_keys = {s.tobytes() for s in res.sides}
        assert sched_keys == legacy_keys


class TestRetry:
    def test_crash_is_retried_and_result_is_clean(self, bridge_graph):
        clean = TrialScheduler().run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        res = TrialScheduler(
            fault_plan=crash_plan([0]), backoff_s=0.0,
        ).run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        assert res.retries == 1
        assert res.value == clean.value
        assert res.ledger.fingerprint() == clean.ledger.fingerprint()

    def test_exhausted_retries_raise_with_trials_attached(self, bridge_graph):
        sched = TrialScheduler(fault_plan=crash_plan([0, 1, 2]),
                               max_retries=2, backoff_s=0.0)
        with pytest.raises(WorkerCrashError) as exc_info:
            sched.run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        err = exc_info.value
        assert err.trials == tuple(range(TRIALS))
        assert "trial(s) in flight" in str(err)
        assert "superstep" in str(err)

    def test_backoff_schedule_deterministic(self, bridge_graph):
        sleeps = []
        sched = TrialScheduler(
            fault_plan=crash_plan([0, 1, 2]), max_retries=3,
            backoff_s=0.1, backoff_factor=2.0, backoff_jitter=0.0,
            sleep=sleeps.append,
        )
        sched.run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_is_seed_deterministic(self, bridge_graph):
        def delays(seed):
            sleeps = []
            TrialScheduler(
                fault_plan=crash_plan([0]), backoff_s=0.1,
                backoff_jitter=0.5, sleep=sleeps.append,
            ).run(bridge_graph, 2, seed=seed, trials=TRIALS)
            return sleeps

        assert delays(7) == delays(7)
        assert 0.1 <= delays(7)[0] <= 0.15

    def test_zero_retries_fails_fast(self, bridge_graph):
        sched = TrialScheduler(fault_plan=crash_plan([0]), max_retries=0)
        with pytest.raises(WorkerFailure):
            sched.run(bridge_graph, 2, seed=SEED, trials=TRIALS)


class TestPartialResults:
    def test_on_failure_continue_reports_honest_probability(self, bridge_graph):
        # Wave 1 of two dies on every attempt; wave 0's trials survive.
        plan = crash_plan([0, 1, 2], rank=0, step=0, wave=1)
        sched = TrialScheduler(wave_size=3, fault_plan=plan, backoff_s=0.0,
                               on_failure="continue")
        full = TrialScheduler(wave_size=3).run(
            bridge_graph, 2, seed=SEED, trials=TRIALS)
        res = sched.run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        assert res.completed == 3 < res.trials
        assert res.value == full.value  # the true cut was in wave 0
        assert res.achieved_success_prob < full.achieved_success_prob
        statuses = {ti: rec.status for ti, rec in res.ledger.records.items()}
        assert [statuses[ti] for ti in range(6)] == (
            ["done"] * 3 + ["failed"] * 3)

    def test_all_waves_failing_raises(self, bridge_graph):
        plan = crash_plan([0, 1, 2], wave=0)
        sched = TrialScheduler(fault_plan=plan, backoff_s=0.0,
                               on_failure="continue")
        with pytest.raises(RuntimeError, match="no trial completed"):
            sched.run(bridge_graph, 2, seed=SEED, trials=TRIALS)


class TestCheckpointResume:
    def test_checkpoint_written_and_resumable(self, bridge_graph, tmp_path):
        ck = str(tmp_path / "ledger.jsonl")
        clean = TrialScheduler().run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        # Run half the waves, then abandon the rest.
        plan = crash_plan([0, 1, 2], rank=0, step=0, wave=1)
        TrialScheduler(
            wave_size=3, checkpoint=ck, fault_plan=plan, backoff_s=0.0,
            on_failure="continue",
        ).run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        resumed = TrialScheduler(wave_size=3, checkpoint=ck).run(
            bridge_graph, 2, seed=SEED, trials=TRIALS, resume=True)
        assert resumed.completed == TRIALS
        assert resumed.dispatches == 1  # only the missing wave re-ran
        assert resumed.ledger.fingerprint() == clean.ledger.fingerprint()
        assert resumed.value == clean.value

    def test_resume_needs_checkpoint_path(self, bridge_graph):
        with pytest.raises(ValueError, match="checkpoint"):
            TrialScheduler().run(bridge_graph, 2, seed=SEED, trials=TRIALS,
                                 resume=True)

    def test_resume_rejects_mismatched_run(self, bridge_graph, tmp_path):
        ck = str(tmp_path / "ledger.jsonl")
        TrialScheduler(checkpoint=ck).run(bridge_graph, 2, seed=SEED,
                                          trials=TRIALS)
        with pytest.raises(ValueError, match="different run"):
            TrialScheduler(checkpoint=ck).run(
                bridge_graph, 2, seed=SEED + 1, trials=TRIALS, resume=True)

    def test_fully_resumed_run_dispatches_nothing(self, bridge_graph, tmp_path):
        ck = str(tmp_path / "ledger.jsonl")
        first = TrialScheduler(checkpoint=ck).run(
            bridge_graph, 2, seed=SEED, trials=TRIALS)
        again = TrialScheduler(checkpoint=ck).run(
            bridge_graph, 2, seed=SEED, trials=TRIALS, resume=True)
        assert again.dispatches == 0
        assert again.value == first.value
        assert again.ledger.fingerprint() == first.ledger.fingerprint()


class TestTraceIntegration:
    def test_single_wave_trace_reconciles_with_report(self, bridge_graph):
        res = TrialScheduler().run(
            bridge_graph, 2, backend=SimBackend(trace=True),
            seed=SEED, trials=TRIALS)
        kinds = [ev.kind for ev in res.trace]
        assert kinds[0] == SCHED_DISPATCH
        (piece,) = split_trace(res.trace)
        assert aggregate_trace(piece) == res.report

    def test_multi_wave_pieces_reconcile(self, bridge_graph):
        res = TrialScheduler(wave_size=3).run(
            bridge_graph, 2, backend=SimBackend(trace=True),
            seed=SEED, trials=TRIALS)
        pieces = split_trace(res.trace)
        assert len(pieces) == 2
        reports = [aggregate_trace(piece) for piece in pieces]
        assert sum(r.supersteps for r in reports) == res.report.supersteps
        assert sum(r.computation for r in reports) == pytest.approx(
            res.report.computation)

    def test_work_fault_flags_straggler(self, bridge_graph):
        plan = parse_fault_plan("work:rank=1,step=1,ops=1e6")
        res = TrialScheduler(fault_plan=plan).run(
            bridge_graph, 2, backend=SimBackend(trace=True),
            seed=SEED, trials=TRIALS)
        assert res.stragglers == {0: [1]}

    def test_untraced_run_has_no_trace(self, bridge_graph):
        res = TrialScheduler().run(bridge_graph, 2, seed=SEED, trials=TRIALS)
        assert res.trace is None and res.stragglers is None


class TestStragglerDetection:
    @staticmethod
    def _event(waits, supersteps=(1, 1)):
        ranks = tuple(range(len(waits)))
        zeros = (0.0,) * len(waits)
        return TraceEvent(kind="allreduce", gid=1, participants=ranks,
                          words=0, supersteps=supersteps, d_ops=zeros,
                          d_sent=zeros, d_recv=zeros, d_misses=zeros,
                          d_wait=tuple(waits))

    def test_low_wait_rank_is_flagged(self):
        events = [self._event([5000.0, 0.0])]
        assert detect_stragglers(events) == [1]
        assert wait_by_rank(events) == {0: 5000.0, 1: 0.0}

    def test_balanced_runs_not_flagged(self):
        events = [self._event([10.0, 12.0])]
        assert detect_stragglers(events) == []

    def test_absolute_floor_suppresses_noise(self):
        events = [self._event([800.0, 0.0])]  # 4x ratio but tiny deficit
        assert detect_stragglers(events, min_deficit_ops=1000.0) == []
        assert detect_stragglers(events, min_deficit_ops=100.0) == [1]

    def test_single_rank_never_flagged(self):
        assert detect_stragglers([self._event([0.0], supersteps=(1,))]) == []


class TestEntryPoints:
    def test_minimum_cut_scheduler_adapter(self, bridge_graph):
        res = minimum_cut(bridge_graph, p=2, seed=SEED,
                          scheduler=TrialScheduler())
        assert res.value == 2.0
        assert res.achieved_success_prob >= 0.9
        assert res.ledger is not None
        assert res.ledger.completed == res.trials

    def test_minimum_cuts_scheduler_adapter(self, bridge_graph):
        legacy = minimum_cuts(bridge_graph, p=2, seed=SEED, trials=TRIALS)
        res = minimum_cuts(bridge_graph, p=2, seed=SEED, trials=TRIALS,
                           scheduler=TrialScheduler())
        assert res.value == legacy.value
        assert {s.tobytes() for s in res.sides} == {
            s.tobytes() for s in legacy.sides}

    def test_resume_without_scheduler_rejected(self, bridge_graph):
        with pytest.raises(ValueError, match="scheduler"):
            minimum_cut(bridge_graph, resume=True)

    def test_preprocess_composes_with_scheduler(self, bridge_graph):
        plain = minimum_cut(bridge_graph, p=2, seed=SEED, preprocess=True)
        sched = minimum_cut(bridge_graph, p=2, seed=SEED, preprocess=True,
                            scheduler=TrialScheduler())
        assert sched.value == plain.value

    def test_run_algorithm_square_root(self, bridge_graph):
        res = run_algorithm("square_root", bridge_graph, p=2, seed=SEED,
                            scheduler=TrialScheduler(), trials=TRIALS)
        assert res.value == 2.0 and res.ledger is not None

    def test_run_algorithm_rejects_scheduler_elsewhere(self, bridge_graph):
        with pytest.raises(ValueError, match="square_root"):
            run_algorithm("parallel_cc", bridge_graph,
                          scheduler=TrialScheduler())


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_s": -0.1},
        {"backoff_factor": 0.5},
        {"backoff_jitter": -1.0},
        {"wave_size": 0},
        {"on_failure": "explode"},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrialScheduler(**kwargs)
