"""Property-based tests (hypothesis) on core invariants.

These encode the structural facts the paper's correctness rests on:
contraction never decreases the minimum cut (§2.4), every algorithm's
witness is a real cut of the reported value, partitions agree across all
implementations, and the sampling primitives preserve their marginals.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, HealthCheck
from hypothesis import strategies as st

from repro.baselines import bgl_cc, galois_cc, karger_stein, pbgl_cc, stoer_wagner
from repro.core import approx_minimum_cut, connected_components, minimum_cut
from repro.core.contraction import prefix_select
from repro.graph import AdjacencyMatrix, EdgeList
from repro.graph.contract import contract_edges
from repro.graph.validate import brute_force_mincut, networkx_components


@st.composite
def small_graphs(draw, max_n=12, max_m=30, weighted=True):
    """Random multigraphs with at least one edge."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(st.floats(min_value=0.5, max_value=8)) if weighted else 1.0
        edges.append((u, v, w))
    assume(edges)
    return EdgeList.from_pairs(n, edges)


common = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestContractionInvariants:
    @given(small_graphs(), st.integers(min_value=0, max_value=10 ** 6))
    @common
    def test_contraction_never_decreases_mincut(self, g, pick):
        idx = np.array([pick % g.m])
        h, labels = contract_edges(g, idx)
        assume(h.n >= 2)
        before = brute_force_mincut(g)
        after = brute_force_mincut(h)
        assert after >= before - 1e-9

    @given(small_graphs())
    @common
    def test_contraction_preserves_components(self, g):
        idx = np.array([0])
        h, labels = contract_edges(g, idx)
        assert networkx_components(g) == networkx_components(h) + (g.n - h.n) - (g.n - h.n)
        # component count is invariant under edge contraction
        assert networkx_components(h) == networkx_components(g)

    @given(small_graphs(), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10 ** 6))
    @common
    def test_prefix_select_respects_target(self, g, t, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(g.m)
        labels, k = prefix_select(g.n, g.u[perm], g.v[perm], t)
        assert k >= min(t, networkx_components(g))
        assert labels.size == g.n
        assert sorted(np.unique(labels).tolist()) == list(range(k))


class TestCutInvariants:
    @given(small_graphs(), st.integers(min_value=0, max_value=100))
    @common
    def test_minimum_cut_witness_consistent(self, g, seed):
        r = minimum_cut(g, p=2, seed=seed, trials=3)
        if r.value > 0:
            assert g.cut_value(r.side) == pytest.approx(r.value)
        truth = brute_force_mincut(g)
        assert r.value >= truth - 1e-9

    @given(small_graphs())
    @common
    def test_exact_algorithms_agree(self, g):
        assume(networkx_components(g) == 1)
        sw_val, _ = stoer_wagner(g)
        mc = minimum_cut(g, p=2, seed=5)
        ks_val, _ = karger_stein(g, seed=5)
        assert mc.value == pytest.approx(sw_val)
        assert ks_val == pytest.approx(sw_val)

    @given(small_graphs(), st.integers(min_value=0, max_value=50))
    @common
    def test_approx_witness_is_upper_bound(self, g, seed):
        r = approx_minimum_cut(g, p=2, seed=seed)
        truth = brute_force_mincut(g)
        if r.witness_value is not None:
            assert r.witness_value >= truth - 1e-9

    @given(small_graphs())
    @common
    def test_matrix_and_edgelist_cuts_agree(self, g):
        a = AdjacencyMatrix.from_edgelist(g)
        side = np.zeros(g.n, dtype=bool)
        side[0] = True
        assert a.cut_value(side) == pytest.approx(g.cut_value(side))


class TestComponentInvariants:
    @given(small_graphs(weighted=False), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=50))
    @common
    def test_cc_matches_all_baselines(self, g, p, seed):
        truth = networkx_components(g)
        assert connected_components(g, p=p, seed=seed).n_components == truth
        assert bgl_cc(g)[1] == truth
        assert galois_cc(g)[1] == truth
        assert pbgl_cc(g, p=p)[1] == truth

    @given(small_graphs(weighted=False), st.integers(min_value=0, max_value=20))
    @common
    def test_cc_labels_consistent_with_edges(self, g, seed):
        res = connected_components(g, p=3, seed=seed)
        assert (res.labels[g.u] == res.labels[g.v]).all()
        assert res.labels.max() == res.n_components - 1

    @given(small_graphs(weighted=False))
    @common
    def test_component_count_bounds(self, g):
        res = connected_components(g, p=2, seed=0)
        assert max(1, g.n - g.m) <= res.n_components <= g.n
