"""Pooled shared-memory arena transport: slab recycling, lifetime, leaks.

The arena's contract is amortized O(1) segment syscalls per collective:
one slab per message, recycled through size-classed free lists, with a
bounded high-water mark and nothing left in /dev/shm after close.  These
tests pin that contract at three levels — ShmArena alone, a Transport
encode/decode round trip, and a full MpBackend run checked against the
OS segment namespace.
"""

import glob
import sys

import numpy as np
import pytest

from repro.bsp.arrays import ArrayBundle
from repro.runtime.transport import (
    ShmArena,
    Transport,
    _size_class,
    collect_slab_names,
    decode_payload,
    encode_payload,
    unlink_segments,
)
from tests.conftest import require_mp


def _shm_names() -> set:
    """Segments currently visible in the OS shm namespace (POSIX only)."""
    return {n.rsplit("/", 1)[-1] for n in glob.glob("/dev/shm/psm_*")}


needs_dev_shm = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="needs /dev/shm"
)


class TestSizeClasses:
    def test_floor_is_64k(self):
        assert _size_class(1) == 1 << 16
        assert _size_class(1 << 16) == 1 << 16

    def test_next_pow2(self):
        assert _size_class((1 << 16) + 1) == 1 << 17
        assert _size_class(3 << 20) == 4 << 20


class TestShmArena:
    def test_reuse_after_release(self):
        arena = ShmArena()
        try:
            seg = arena.acquire(100_000)
            name = seg.name
            arena.release(name)
            again = arena.acquire(90_000)  # same 128 KiB class
            assert again.name == name
            assert arena.created == 1 and arena.reused == 1
        finally:
            arena.close()

    def test_best_fit_serves_small_from_larger_class(self):
        # Shrinking workloads must keep recycling their round-one slab.
        arena = ShmArena()
        try:
            big = arena.acquire(1 << 20)
            arena.release(big.name)
            small = arena.acquire(1000)
            assert small.name == big.name
            assert arena.created == 1 and arena.reused == 1
        finally:
            arena.close()

    def test_distinct_classes_do_not_alias(self):
        arena = ShmArena()
        try:
            small = arena.acquire(1000)
            arena.release(small.name)
            big = arena.acquire(1 << 20)
            assert big.name != small.name
            assert arena.created == 2 and arena.reused == 0
        finally:
            arena.close()

    def test_concurrent_acquires_get_distinct_slabs(self):
        arena = ShmArena()
        try:
            a = arena.acquire(1000)
            b = arena.acquire(1000)  # a still in use: must not alias
            assert a.name != b.name
        finally:
            arena.close()

    def test_high_water_tracks_peak(self):
        arena = ShmArena()
        try:
            arena.acquire(1000)
            arena.acquire(1000)
            assert arena.high_water == 2 * (1 << 16)
            assert arena.live_bytes == arena.high_water
        finally:
            arena.close()

    @needs_dev_shm
    def test_max_retained_evicts(self):
        arena = ShmArena(max_retained=0)
        try:
            seg = arena.acquire(1000)
            name = seg.name
            assert name in _shm_names()
            arena.release(name)  # retention bound 0: unlinked immediately
            assert name not in _shm_names()
            assert arena.live_bytes == 0
        finally:
            arena.close()

    @needs_dev_shm
    def test_close_unlinks_everything(self):
        arena = ShmArena()
        a = arena.acquire(1000)
        b = arena.acquire(1 << 20)
        arena.release(a.name)
        names = set(arena.close())
        assert names == {a.name, b.name}
        assert not (names & _shm_names())


class TestTransportArena:
    def _round_trip(self, tx, rx, payload):
        wire, slabs = tx.encode(payload, "test")
        out = rx.decode(wire)
        tx.release(slabs)
        return out, slabs

    def test_bundle_packs_into_one_slab(self):
        tx, rx = Transport(threshold=1 << 10), Transport(threshold=1 << 10)
        try:
            b = ArrayBundle(np.arange(50_000, dtype=np.int64),
                            np.ones(50_000), np.zeros(50_000, dtype=bool),
                            counts=np.array([20_000, 30_000]))
            out, slabs = self._round_trip(tx, rx, b)
            assert len(slabs) == 1  # three columns, one segment
            assert out == b
            assert np.array_equal(out.counts, b.counts)
            assert tx.arena.created == 1
        finally:
            tx.close()
            rx.close()

    def test_slab_reused_across_messages(self):
        tx, rx = Transport(threshold=1 << 10), Transport(threshold=1 << 10)
        try:
            for i in range(5):
                payload = (np.full(40_000, i, dtype=np.int64),)
                out, _ = self._round_trip(tx, rx, payload)
                assert np.array_equal(out[0], payload[0])
            assert tx.arena.created == 1
            assert tx.arena.reused == 4
        finally:
            tx.close()
            rx.close()

    def test_below_threshold_stays_inline(self):
        tx = Transport(threshold=1 << 20)
        try:
            b = ArrayBundle(np.arange(100), np.ones(100))
            wire, slabs = tx.encode(b, "small")
            assert slabs == []
            assert collect_slab_names(wire) == set()
            out = decode_payload(wire)  # no attach needed: all inline
            assert out == b
        finally:
            tx.close()

    def test_mixed_dtypes_preserved(self):
        tx, rx = Transport(threshold=1 << 10), Transport(threshold=1 << 10)
        try:
            payload = [np.arange(30_000, dtype=np.int64),
                       (np.ones(30_000, dtype=np.float64),
                        np.zeros(30_000, dtype=bool))]
            out, _ = self._round_trip(tx, rx, payload)
            assert out[0].dtype == np.int64
            assert out[1][0].dtype == np.float64
            assert out[1][1].dtype == np.bool_
        finally:
            tx.close()
            rx.close()

    def test_stats_per_kind(self):
        tx = Transport(threshold=1 << 10)
        try:
            tx.encode((np.arange(30_000),), "gatherv")
            tx.encode((np.arange(8),), "barrier")
            d = tx.stats.as_dict()
            assert d["per_kind"]["gatherv"]["segments_created"] == 1
            assert d["per_kind"]["gatherv"]["bytes_copied"] == 30_000 * 8
            assert d["per_kind"]["barrier"]["segments_created"] == 0
            assert d["total"]["messages"] == 2
        finally:
            tx.close()

    @needs_dev_shm
    def test_close_leaves_no_segments(self):
        before = _shm_names()
        tx, rx = Transport(threshold=1 << 10), Transport(threshold=1 << 10)
        out, _ = self._round_trip(tx, rx, (np.arange(40_000),))
        tx.close()
        rx.close()
        assert np.array_equal(out[0], np.arange(40_000))
        assert _shm_names() <= before


class TestLegacyCodec:
    def test_bundle_ref_round_trip(self):
        b = ArrayBundle(np.arange(20_000, dtype=np.int64), np.ones(20_000),
                        counts=np.array([20_000]))
        wire = encode_payload(b, threshold=1 << 10)
        out = decode_payload(wire)
        assert out == b
        assert np.array_equal(out.counts, b.counts)

    @needs_dev_shm
    def test_unlink_segments_reports_reclaimed(self):
        wire = encode_payload(np.arange(20_000), threshold=1 << 10)
        name = wire.name
        assert unlink_segments([name, "psm_no_such_segment"]) == [name]
        assert unlink_segments([name]) == []  # already gone


def _rounds_program(ctx, n, rounds):
    """Constant-size multi-column collectives repeated ``rounds`` times —
    the steady-state shape the pool is built for: after round one every
    slab acquisition should hit the free list."""
    total = 0.0
    size = ctx.comm.size
    for _ in range(rounds):
        u = np.arange(n, dtype=np.int64) + ctx.rank
        w = np.ones(n)
        parcels = [(u[j::size], w[j::size]) for j in range(size)]
        ex = yield from ctx.comm.alltoallv(parcels)
        ag = yield from ctx.comm.allgatherv(u, w)
        total += float(ex[1].sum()) + float(ag[0].sum())
    return total


@needs_dev_shm
class TestMpEndToEnd:
    def _run(self, **backend_kwargs):
        from repro.runtime.mp import MpBackend

        backend = MpBackend(timeout=180.0, shm_threshold=1 << 12,
                            **backend_kwargs)
        res = backend.run(_rounds_program, 2, seed=3, args=(20_000, 6))
        return res, backend

    def test_no_leaked_segments_and_slab_reuse(self):
        require_mp()
        before = _shm_names()
        res, backend = self._run()
        assert _shm_names() <= before  # nothing left behind
        stats = backend.last_transport_stats
        assert stats is not None
        total = stats["total"]
        # Steady-state rounds: only round one allocates, the rest recycle.
        assert total["segments_reused"] > total["segments_created"]
        assert stats["high_water_bytes"] > 0

    def test_arena_beats_legacy_on_segment_allocations(self):
        require_mp()
        res_pooled, pooled = self._run()
        res_legacy, legacy = self._run(use_arena=False)
        assert res_pooled.values == res_legacy.values
        created_pooled = pooled.last_transport_stats["total"]["segments_created"]
        created_legacy = legacy.last_transport_stats["total"]["segments_created"]
        assert created_legacy >= 2 * max(created_pooled, 1)
