"""Tests for the sequential Karger–Stein recursion and its building blocks."""

import numpy as np
import pytest

from repro.cache import AnalyticTracker, LRUTracker
from repro.core.karger_stein import (
    KS_BASE_SIZE,
    brute_force_matrix,
    karger_stein_matrix,
    random_contract_matrix,
)
from repro.graph import AdjacencyMatrix, complete_graph, erdos_renyi, two_cliques_bridge
from repro.graph.validate import brute_force_mincut, networkx_components
from repro.rng import philox_stream


def matrix_of(g):
    return AdjacencyMatrix.from_edgelist(g).a


class TestBruteForceMatrix:
    def test_triangle(self):
        val, side = brute_force_matrix(matrix_of(complete_graph(3)))
        assert val == 2.0
        assert side.sum() in (1, 2)

    def test_matches_edge_enumeration(self):
        for seed in range(6):
            g = erdos_renyi(7, 15, philox_stream(seed), weighted=True)
            val, side = brute_force_matrix(matrix_of(g))
            assert val == brute_force_mincut(g)
            if 0 < side.sum() < g.n:
                assert g.cut_value(side) == val

    def test_disconnected_zero(self):
        a = np.zeros((4, 4))
        a[0, 1] = a[1, 0] = 1.0
        val, side = brute_force_matrix(a)
        assert val == 0.0

    def test_too_small(self):
        with pytest.raises(ValueError):
            brute_force_matrix(np.zeros((1, 1)))


class TestRandomContract:
    def test_reaches_target(self):
        a = matrix_of(complete_graph(20))
        cur, labels, k = random_contract_matrix(a, 5, philox_stream(1))
        assert k == 5
        assert cur.shape == (5, 5)
        assert labels.max() < 5

    def test_weight_conservation_bound(self):
        """Contraction only removes weight (loops), never creates it."""
        g = erdos_renyi(15, 60, philox_stream(2), weighted=True)
        a = matrix_of(g)
        cur, _, _ = random_contract_matrix(a, 4, philox_stream(3))
        assert cur.sum() <= a.sum() + 1e-9

    def test_symmetry_preserved(self):
        a = matrix_of(complete_graph(12))
        cur, _, _ = random_contract_matrix(a, 4, philox_stream(4))
        assert np.allclose(cur, cur.T)
        assert (np.diag(cur) == 0).all()

    def test_disconnected_stops_early(self):
        g = two_cliques_bridge(4)
        a = matrix_of(g)
        a[0, 4] = a[4, 0] = 0.0  # remove the bridge: now disconnected
        cur, labels, k = random_contract_matrix(a, 2, philox_stream(5))
        # must stop at the two components with no edges left
        assert k == 2
        assert cur.sum() == 0

    def test_labels_consistent_with_matrix(self):
        g = erdos_renyi(12, 40, philox_stream(6), weighted=True)
        a = matrix_of(g)
        cur, labels, k = random_contract_matrix(a, 3, philox_stream(7))
        # contracting `a` by `labels` must reproduce `cur`
        expected = AdjacencyMatrix(a, validate=False).contract(labels, k).a
        assert np.allclose(cur, expected)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            random_contract_matrix(matrix_of(complete_graph(4)), 1, philox_stream(0))


class TestKargerStein:
    def test_cut_value_never_below_truth(self):
        """Any returned cut is a real cut: value >= the true minimum."""
        for seed in range(8):
            g = erdos_renyi(10, 25, philox_stream(seed + 10), weighted=True)
            truth = brute_force_mincut(g)
            val, side = karger_stein_matrix(matrix_of(g), philox_stream(seed))
            assert val >= truth - 1e-9
            assert g.cut_value(side) == pytest.approx(val)

    def test_finds_bridge_with_repetition(self):
        g = two_cliques_bridge(6)
        a = matrix_of(g)
        best = min(
            karger_stein_matrix(a, philox_stream(s))[0] for s in range(8)
        )
        assert best == 1.0

    def test_base_case_exact(self):
        g = complete_graph(KS_BASE_SIZE)
        val, _ = karger_stein_matrix(matrix_of(g), philox_stream(1))
        assert val == KS_BASE_SIZE - 1

    def test_disconnected_returns_zero(self):
        a = np.zeros((8, 8))
        a[0, 1] = a[1, 0] = 3.0
        a[5, 6] = a[6, 5] = 2.0
        val, side = karger_stein_matrix(a, philox_stream(2))
        assert val == 0.0
        assert 0 < side.sum() < 8

    def test_witness_is_valid_partition(self):
        g = erdos_renyi(14, 50, philox_stream(20), weighted=True)
        val, side = karger_stein_matrix(matrix_of(g), philox_stream(3))
        assert side.dtype == bool
        assert 0 < side.sum() < g.n

    def test_tracker_records_work(self):
        g = erdos_renyi(16, 60, philox_stream(21), weighted=True)
        mem = AnalyticTracker()
        karger_stein_matrix(matrix_of(g), philox_stream(4), mem)
        assert mem.op_count > 16 * 16
        assert mem.miss_count > 0

    def test_lru_tracker_compatible(self):
        g = erdos_renyi(12, 40, philox_stream(22), weighted=True)
        mem = LRUTracker(M=1024, B=8)
        karger_stein_matrix(matrix_of(g), philox_stream(5), mem)
        assert mem.miss_count > 0
