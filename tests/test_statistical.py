"""Statistical validation of the randomized lemmas the algorithms rest on.

These tests estimate success frequencies over many seeded repetitions and
compare against the paper's probabilistic guarantees with generous slack
(the bounds are lower bounds; empirical rates sit well above them).
"""

import math

import numpy as np
import pytest

from repro.core.karger_stein import karger_stein_matrix, random_contract_matrix
from repro.core.mincut import sequential_trial
from repro.core.trials import (
    eager_survival_probability,
    num_trials,
    recursive_success_probability,
)
from repro.graph import AdjacencyMatrix, erdos_renyi, two_cliques_bridge, weighted_cycle
from repro.graph.validate import networkx_mincut
from repro.rng import philox_stream


class TestLemma21SurvivalProbability:
    """Random contraction to t vertices preserves a given minimum cut with
    probability at least t(t-1)/(n(n-1))."""

    def test_cycle_cut_survival(self):
        # weighted cycle with a unique minimum cut: the two weight-1 edges.
        n = 10
        weights = np.full(n, 5.0)
        weights[0] = 1.0
        weights[4] = 1.0
        g = weighted_cycle(n, weights)
        a = AdjacencyMatrix.from_edgelist(g).a
        t = 4
        bound = eager_survival_probability(n, t)
        reps = 300
        survived = 0
        for seed in range(reps):
            cur, labels, k = random_contract_matrix(a, t, philox_stream(seed))
            # the cut survives iff neither weight-1 edge was contracted,
            # i.e. the contracted graph still has a cut of value 2
            side = labels[: n // 2 + 1]
            # check minimum cut of contracted graph equals 2
            from repro.core.karger_stein import brute_force_matrix

            val, _ = brute_force_matrix(cur)
            if val == 2.0:
                survived += 1
        rate = survived / reps
        assert rate >= bound * 0.9, (rate, bound)

    def test_survival_decreases_with_deeper_contraction(self):
        g = two_cliques_bridge(6)
        a = AdjacencyMatrix.from_edgelist(g).a
        from repro.core.karger_stein import brute_force_matrix

        rates = []
        for t in (8, 4, 2):
            ok = 0
            for seed in range(200):
                cur, _, k = random_contract_matrix(a, t, philox_stream(seed))
                val, _ = brute_force_matrix(cur) if cur.shape[0] >= 2 else (0, None)
                ok += val == 1.0
            rates.append(ok / 200)
        assert rates[0] >= rates[2] - 0.05, rates


class TestLemma22RecursiveContraction:
    """One recursive contraction finds a given minimum cut with probability
    Omega(1/log n)."""

    def test_success_rate_above_bound(self):
        g = erdos_renyi(24, 100, philox_stream(60), weighted=True)
        truth = networkx_mincut(g)
        a = AdjacencyMatrix.from_edgelist(g).a
        bound = recursive_success_probability(g.n)
        reps = 120
        hits = sum(
            karger_stein_matrix(a, philox_stream(seed))[0] == truth
            for seed in range(reps)
        )
        rate = hits / reps
        assert rate >= bound, (rate, bound)


class TestTrialBudget:
    """The §4 trial count actually reaches the requested success rate."""

    def test_trials_reach_success_probability(self):
        g = erdos_renyi(28, 90, philox_stream(61), weighted=True)
        truth = networkx_mincut(g)
        trials = num_trials(g.n, g.m, success_prob=0.9)
        execs = 25
        hits = 0
        for run in range(execs):
            best = math.inf
            from repro.rng.streams import RngStreams

            streams = RngStreams(1000 + run)
            for ti in range(trials):
                val, _ = sequential_trial(g.u, g.v, g.w, g.n, streams.aux(ti))
                best = min(best, val)
                if best == truth:
                    break
            hits += best == truth
        # binomial(25, 0.9): P[hits <= 18] < 1%, so 19 is a safe floor
        assert hits >= 19, f"only {hits}/{execs} executions found the minimum"


class TestSamplingConcentration:
    """The unweighted sampler's Chernoff oversampling covers the demand."""

    def test_oversample_covers_expectation(self):
        from repro.bsp import run_spmd
        from repro.core.sparsify import sparsify_unweighted

        g = erdos_renyi(400, 8000, philox_stream(62))
        slices = g.slices(4)
        s = 1200
        sizes = []
        for seed in range(20):
            def prog(ctx):
                sl = slices[ctx.rank]
                out = yield from sparsify_unweighted(
                    ctx, ctx.comm, sl.u, sl.v, s, n=g.n, delta=0.5
                )
                return None if out is None else out[0].size

            res = run_spmd(prog, 4, seed=seed)
            sizes.append(res.root_value)
        # every execution must gather at least s edges (w.h.p. by Chernoff:
        # each slice oversamples (1+delta)*mu_i, so the union covers s)
        assert min(sizes) >= s
        # and not more than the (1+delta) oversampling plus rounding slack
        assert max(sizes) <= int(1.5 * s) + 64
