"""The serve daemon: protocol, fairness, determinism, restart resume.

Two harness styles:

* **threadless** — a :class:`~repro.serve.Daemon` that is never
  ``start()``-ed: requests go through ``handle_request`` and the
  executor is driven by hand (``queue.pop`` + ``_run_slice``).  Fully
  deterministic; used for everything that asserts on interleaving or
  crash/restart.
* **live** — a started daemon on a unix socket in ``tmp_path`` with the
  sim backend, talked to through the real :class:`~repro.serve.Client`.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.graph import erdos_renyi, write_edgelist
from repro.harness.experiment import run_algorithm
from repro.rng import philox_stream
from repro.serve import Client, Daemon, ServeConfig, ServeError, wait_server


@pytest.fixture
def graph():
    return erdos_renyi(60, 300, philox_stream(3), weighted=True)


@pytest.fixture
def graph_file(graph, tmp_path):
    path = str(tmp_path / "g.edges")
    write_edgelist(graph, path)
    return path


def threadless(tmp_path, name="state", **cfg):
    cfg.setdefault("backend", "sim")
    cfg.setdefault("wave_size", 4)
    return Daemon(ServeConfig(bind="", state_dir=str(tmp_path / name),
                              **cfg))


def drive(daemon, until=None, limit=10_000):
    """Run executor slices by hand until idle (or ``until()`` is true)."""
    for _ in range(limit):
        if until is not None and until():
            return
        popped = daemon.queue.pop()
        if popped is None:
            return
        job = daemon.jobs.get(popped[1])
        if job is not None and not job.terminal:
            daemon._run_slice(job)
    raise AssertionError("executor did not drain")


def submit(daemon, algorithm, path, **fields):
    doc = {"op": "submit", "algorithm": algorithm, "path": path, **fields}
    reply = daemon.handle_request(doc)
    assert reply["ok"], reply
    return reply["job"]


# -- live socket daemon -------------------------------------------------------


def test_socket_roundtrip_matches_direct(graph, graph_file, tmp_path):
    cfg = ServeConfig(bind=str(tmp_path / "s.sock"),
                      state_dir=str(tmp_path / "state"), backend="sim")
    with Daemon(cfg) as daemon:
        wait_server(daemon.address)
        with Client(daemon.address, client="t") as c:
            assert c.ping()["version"] >= 1
            cc = c.run("parallel_cc", graph_file, seed=5)
            sq = c.run("square_root", graph_file, seed=7)
    d_cc = run_algorithm("parallel_cc", graph, p=4, seed=5)
    d_sq = run_algorithm("square_root", graph, p=4, seed=7)
    assert cc["n_components"] == d_cc.n_components
    assert cc["labels"] == [int(x) for x in d_cc.labels]
    assert sq["value"] == d_sq.value
    assert sq["trials"] == d_sq.trials


def test_socket_concurrent_clients_bit_identical_to_solo(
        graph, graph_file, tmp_path):
    """Many clients at once: every answer matches its solo run exactly."""
    cfg = ServeConfig(bind=str(tmp_path / "s.sock"),
                      state_dir=str(tmp_path / "state"), backend="sim",
                      wave_size=4)
    seeds = [7, 11, 13]
    results = {}

    def one(seed):
        with Client(cfg.bind, client=f"c{seed}") as c:
            results[seed] = c.run("square_root", graph_file, seed=seed)

    with Daemon(cfg) as daemon:
        wait_server(daemon.address)
        threads = [threading.Thread(target=one, args=(s,)) for s in seeds]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
    for seed in seeds:
        solo = run_algorithm("square_root", graph, p=4, seed=seed)
        assert results[seed]["value"] == solo.value, seed
        assert results[seed]["trials"] == solo.trials


def test_socket_shutdown_op_stops_daemon(graph_file, tmp_path):
    cfg = ServeConfig(bind=str(tmp_path / "s.sock"),
                      state_dir=str(tmp_path / "state"), backend="sim")
    daemon = Daemon(cfg)
    daemon.start()
    wait_server(daemon.address)
    with Client(daemon.address) as c:
        c.shutdown()
    assert daemon._stopping.wait(10)
    for t in daemon._threads:
        t.join(10)
    # stop() runs on the connection thread; poll for its last step
    for _ in range(200):
        if not os.path.exists(cfg.bind):
            break
        time.sleep(0.05)
    assert not os.path.exists(cfg.bind)


# -- threadless: protocol -----------------------------------------------------


def test_submit_validates(graph_file, tmp_path):
    d = threadless(tmp_path)
    assert d.handle_request({"op": "nope"})["error"] == "ProtocolError"
    assert d.handle_request({"op": "submit", "algorithm": "bogus",
                      "path": graph_file})["error"] == "ProtocolError"
    assert d.handle_request({"op": "submit", "algorithm": "parallel_cc",
                      "path": str(tmp_path / "missing")}
                     )["error"] == "GraphUnreadable"
    assert d.handle_request({"op": "status", "job": "jX"}
                     )["error"] == "ProtocolError"


def test_submit_rejects_fingerprint_mismatch(graph_file, tmp_path):
    d = threadless(tmp_path)
    bad = d.handle_request({"op": "submit", "algorithm": "parallel_cc",
                     "path": graph_file, "fingerprint": "f" * 64})
    assert bad["error"] == "FingerprintMismatch"
    assert len(d.jobs) == 0          # rejected before anything was queued
    good_fp = d.handle_request({"op": "submit", "algorithm": "parallel_cc",
                         "path": graph_file})["fingerprint"]
    jid = submit(d, "parallel_cc", graph_file, fingerprint=good_fp)
    drive(d)
    assert d.jobs[jid].state == "done"


def test_cancel_queued_and_running(graph_file, tmp_path):
    d = threadless(tmp_path)
    jid = submit(d, "square_root", graph_file, seed=7)
    d._run_slice(d.jobs[jid])        # now mid-run with waves pending
    assert d.handle_request({"op": "cancel", "job": jid})["state"] == "cancelled"
    drive(d)
    assert d.jobs[jid].state == "cancelled"
    assert d.handle_request({"op": "result", "job": jid})["error"] == "JobCancelled"
    assert jid not in d._runs


def test_status_and_result_docs(graph, graph_file, tmp_path):
    d = threadless(tmp_path)
    jid = submit(d, "parallel_cc", graph_file, seed=5)
    st = d.handle_request({"op": "status", "job": jid})
    assert st["state"] == "queued"
    drive(d)
    st = d.handle_request({"op": "status", "job": jid})
    assert st["state"] == "done" and st["waves_done"] == 1
    res = d.handle_request({"op": "result", "job": jid})["result"]
    solo = run_algorithm("parallel_cc", graph, p=4, seed=5)
    assert res["n_components"] == solo.n_components


def test_stats_doc(graph_file, tmp_path):
    d = threadless(tmp_path)
    submit(d, "parallel_cc", graph_file, client="a")
    drive(d)
    st = d.handle_request({"op": "stats"})
    assert st["jobs"] == {"done": 1}
    assert st["queue"]["served_total"] == 1
    assert st["cache"]["graphs"]["entries"] == 1


# -- threadless: interleaving, fairness, determinism --------------------------


def test_interleaved_jobs_bit_identical_to_solo(graph, graph_file, tmp_path):
    """Wave interleaving across tenants never changes any job's bits."""
    d = threadless(tmp_path)
    jobs = {seed: submit(d, "square_root", graph_file, seed=seed,
                         client=f"c{seed}")
            for seed in (7, 11)}
    drive(d)
    for seed, jid in jobs.items():
        solo = run_algorithm("square_root", graph, p=4, seed=seed)
        job = d.jobs[jid]
        assert job.result["value"] == solo.value
        # and the ledger equals a solo scheduled run's, bit for bit
        from repro.sched import TrialScheduler

        ref = TrialScheduler(wave_size=4).run(graph, 4, backend="sim",
                                              seed=seed)
        assert job.result["ledger_fingerprint"] == ref.ledger.fingerprint()


def test_fair_queue_bounds_small_job_latency(graph, graph_file, tmp_path):
    """A one-slice CC query lands while a long min-cut job is mid-flight."""
    d = threadless(tmp_path)
    big = submit(d, "square_root", graph_file, seed=7, client="bulk")
    d._run_slice(d.jobs[big])        # bulk job under way, many waves left
    small = submit(d, "parallel_cc", graph_file, seed=5, client="quick")
    drive(d, until=lambda: d.jobs[small].terminal)
    assert d.jobs[small].state == "done"
    assert not d.jobs[big].terminal   # CC answered mid-bulk, not after it
    drive(d)
    assert d.jobs[big].state == "done"


def test_priority_weights_shift_service(graph_file, tmp_path):
    d = threadless(tmp_path, wave_size=2, quantum=2.0)
    a = submit(d, "square_root", graph_file, seed=7, client="a",
               priority=1.0)
    b = submit(d, "square_root", graph_file, seed=7, client="b",
               priority=4.0)
    drive(d, until=lambda: d.jobs[a].terminal or d.jobs[b].terminal)
    # the 4x-weighted client finishes its identical workload first
    assert d.jobs[b].terminal and not d.jobs[a].terminal
    drive(d)
    assert d.jobs[a].state == "done"
    assert d.jobs[a].result["value"] == d.jobs[b].result["value"]


def test_two_out_jobs_share_cached_plan(graph, graph_file, tmp_path):
    d = threadless(tmp_path)
    j1 = submit(d, "square_root", graph_file, seed=7, variant="2out")
    j2 = submit(d, "square_root", graph_file, seed=7, variant="2out",
                client="other")
    drive(d)
    solo = run_algorithm("square_root", graph, p=4, seed=7, variant="2out")
    assert d.jobs[j1].result["value"] == solo.value
    assert d.jobs[j1].result == d.jobs[j2].result
    st = d.cache.stats()["derivatives"]
    assert st["entries"] == 1 and st["hits"] == 1   # plan computed once


def test_graph_eviction_reload_mid_queue(graph, graph_file, tmp_path):
    """A job whose graph was evicted reloads it transparently — and the
    reload still validates against the job's pinned fingerprint."""
    other = erdos_renyi(90, 400, philox_stream(9), weighted=True)
    opath = str(tmp_path / "o.edges")
    write_edgelist(other, opath)
    d = threadless(tmp_path, cache_edges=max(graph.m, other.m))
    jid = submit(d, "parallel_cc", graph_file, seed=5)
    submit(d, "parallel_cc", opath, seed=5)   # evicts the first graph
    assert d.cache.get_graph(d.jobs[jid].fingerprint) is None
    drive(d)
    solo = run_algorithm("parallel_cc", graph, p=4, seed=5)
    assert d.jobs[jid].result["n_components"] == solo.n_components


# -- threadless: restart resume -----------------------------------------------


def test_restart_resumes_bit_identically(graph, graph_file, tmp_path):
    state = str(tmp_path / "state")
    d1 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim",
                            wave_size=4))
    jid = submit(d1, "square_root", graph_file, seed=7)
    for _ in range(3):                       # a few waves, then "crash"
        popped = d1.queue.pop()
        d1._run_slice(d1.jobs[popped[1]])
    assert 0 < d1.jobs[jid].waves_done < d1.jobs[jid].waves_total
    del d1                                   # no stop(): simulated kill

    d2 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim",
                            wave_size=4))
    job = d2.jobs[jid]
    assert job.state == "queued" and job.waves_done == 3
    drive(d2)
    assert job.state == "done"
    assert job.waves_done == job.waves_total

    # bit-identical to an uninterrupted daemon and to a solo run
    d3 = Daemon(ServeConfig(bind="", state_dir=str(tmp_path / "s3"),
                            backend="sim", wave_size=4))
    j3 = submit(d3, "square_root", graph_file, seed=7)
    drive(d3)
    uninterrupted = d3.jobs[j3].result
    assert job.result["value"] == uninterrupted["value"]
    assert (job.result["ledger_fingerprint"]
            == uninterrupted["ledger_fingerprint"])
    solo = run_algorithm("square_root", graph, p=4, seed=7)
    assert job.result["value"] == solo.value


def test_restart_keeps_terminal_results(graph_file, tmp_path):
    state = str(tmp_path / "state")
    d1 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    jid = submit(d1, "parallel_cc", graph_file, seed=5)
    drive(d1)
    result = d1.jobs[jid].result
    del d1
    d2 = Daemon(ServeConfig(bind="", state_dir=state, backend="sim"))
    assert d2.jobs[jid].state == "done"
    assert d2.jobs[jid].result == result
    assert len(d2.queue) == 0                # nothing requeued


def test_failed_job_reports_error(graph, tmp_path):
    # graph file deleted (and cache flushed) between submit and execution
    path = str(tmp_path / "doomed.edges")
    write_edgelist(graph, path)
    d = threadless(tmp_path)
    jid = submit(d, "parallel_cc", path)
    os.unlink(path)
    d.cache.graphs.clear()
    popped = d.queue.pop()
    try:
        d._run_slice(d.jobs[popped[1]])
    except Exception as exc:          # the executor loop's failure path
        d._finish_job(d.jobs[jid], error=f"{type(exc).__name__}: {exc}")
    assert d.jobs[jid].state == "failed"
    reply = d.handle_request({"op": "result", "job": jid})
    assert reply["error"] == "JobFailed"
