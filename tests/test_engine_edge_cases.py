"""Engine robustness: exceptions, generator discipline, group corner cases."""

import operator

import numpy as np
import pytest

from repro.bsp import (
    CollectiveMismatchError,
    DeadlockError,
    Engine,
    run_spmd,
)


class TestExceptionPropagation:
    def test_rank_exception_surfaces(self):
        def prog(ctx):
            if ctx.rank == 1:
                raise RuntimeError("boom at rank 1")
            yield from ctx.comm.barrier()

        with pytest.raises(RuntimeError, match="boom at rank 1"):
            run_spmd(prog, 3)

    def test_exception_after_collective(self):
        def prog(ctx):
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                raise ValueError("late failure")
            yield from ctx.comm.barrier()

        with pytest.raises(ValueError, match="late failure"):
            run_spmd(prog, 2)

    def test_exception_inside_reduce_op(self):
        def bad_op(a, b):
            raise ArithmeticError("op exploded")

        def prog(ctx):
            x = yield from ctx.comm.allreduce(1, op=bad_op)
            return x

        with pytest.raises(ArithmeticError):
            run_spmd(prog, 2)


class TestGeneratorDiscipline:
    def test_non_generator_program_rejected(self):
        def prog(ctx):
            return 42  # plain function: never yields

        with pytest.raises((TypeError, AttributeError)):
            run_spmd(prog, 2)

    def test_forgotten_yield_from_deadlocks(self):
        """Calling a collective without `yield from` silently skips it —
        the engine must surface the resulting divergence."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.barrier()  # BUG: missing yield from
                return 0
            yield from ctx.comm.barrier()
            return 1

        with pytest.raises(DeadlockError):
            run_spmd(prog, 2)

    def test_foreign_communicator_rejected(self):
        stash = {}

        def prog(ctx):
            if ctx.rank == 0:
                stash["comm"] = ctx.comm
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from stash["comm"].barrier()  # rank 0's view!
            else:
                yield from ctx.comm.barrier()
            return None

        with pytest.raises(CollectiveMismatchError):
            run_spmd(prog, 2)


class TestGroupCornerCases:
    def test_singleton_groups(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(ctx.rank)  # every rank alone
            x = yield from sub.allreduce(ctx.rank, op=operator.add)
            xs = yield from sub.allgather(x)
            return xs

        res = run_spmd(prog, 4)
        assert res.values == [[0], [1], [2], [3]]

    def test_group_then_world_collective(self):
        def prog(ctx):
            sub = yield from ctx.comm.split(ctx.rank % 2)
            s = yield from sub.allreduce(1, op=operator.add)
            total = yield from ctx.comm.allreduce(s, op=operator.add)
            return total

        res = run_spmd(prog, 4)
        assert res.values == [8, 8, 8, 8]

    def test_interleaved_group_and_world(self):
        """One group keeps communicating while the world waits for the
        other — then everyone joins a world collective."""

        def prog(ctx):
            sub = yield from ctx.comm.split(0 if ctx.rank < 2 else 1)
            rounds = 4 if ctx.rank < 2 else 1
            acc = 0
            for _ in range(rounds):
                acc = yield from sub.allreduce(1, op=operator.add)
            total = yield from ctx.comm.allreduce(acc, op=operator.add)
            return total

        res = run_spmd(prog, 4)
        assert all(v == 8 for v in res.values)

    def test_split_of_split(self):
        def prog(ctx):
            half = yield from ctx.comm.split(ctx.rank // 4)
            quarter = yield from half.split(half.rank // 2)
            return quarter.size

        res = run_spmd(prog, 8)
        assert res.values == [2] * 8

    def test_empty_payload_collectives(self):
        def prog(ctx):
            xs = yield from ctx.comm.allgather(np.zeros(0))
            g = yield from ctx.comm.gather(None)
            return sum(x.size for x in xs), g

        res = run_spmd(prog, 3)
        assert res.values[0] == (0, [None, None, None])


class TestCountersEdgeCases:
    def test_zero_work_run(self):
        def prog(ctx):
            return ctx.rank
            yield  # pragma: no cover - makes it a generator

        res = run_spmd(prog, 3)
        assert res.report.supersteps == 0
        assert res.report.computation == 0

    def test_wait_zero_when_balanced(self):
        def prog(ctx):
            ctx.charge(ops=100)
            yield from ctx.comm.barrier()
            return None

        assert run_spmd(prog, 4).report.wait == 0

    def test_wait_accumulates_across_steps(self):
        def prog(ctx):
            for _ in range(3):
                ctx.charge(ops=100 if ctx.rank == 0 else 0)
                yield from ctx.comm.barrier()
            return None

        assert run_spmd(prog, 2).report.wait == 300
