"""Tests for SNAP reading, chunked streaming, and semi-external CC."""

import numpy as np
import pytest

from repro.core.external import cc_semi_external
from repro.graph import EdgeList, erdos_renyi, write_edgelist
from repro.graph.io import read_snap, stream_edge_chunks
from repro.graph.validate import networkx_components
from repro.rng import philox_stream


class TestReadSnap:
    def test_basic(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP comment\n# another\n0\t1\n1\t2\n2\t0\n")
        g = read_snap(path)
        assert g.n == 3 and g.m == 3

    def test_sparse_ids_compacted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 999\n")
        g = read_snap(path)
        assert g.n == 3 and g.m == 2

    def test_explicit_n_keeps_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        g = read_snap(path, n=10)
        assert g.n == 10
        assert g.as_tuples() == [(0, 5, 1.0)]

    def test_explicit_n_too_small(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        with pytest.raises(ValueError):
            read_snap(path, n=3)

    def test_dedup_and_loops(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n0 0\n0 1\n")
        g = read_snap(path)
        assert g.m == 1

    def test_empty(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = read_snap(path)
        assert g.n == 0 and g.m == 0


class TestStreamChunks:
    def test_roundtrip_all_edges(self, tmp_path):
        g = erdos_renyi(50, 200, philox_stream(90), weighted=True)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        chunks = list(stream_edge_chunks(path, chunk_edges=37))
        u = np.concatenate([c[0] for c in chunks])
        v = np.concatenate([c[1] for c in chunks])
        w = np.concatenate([c[2] for c in chunks])
        assert np.array_equal(u, g.u)
        assert np.array_equal(v, g.v)
        assert np.allclose(w, g.w)
        assert all(c[0].size <= 37 for c in chunks)

    def test_single_chunk(self, tmp_path):
        g = erdos_renyi(20, 40, philox_stream(91))
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        chunks = list(stream_edge_chunks(path, chunk_edges=1000))
        assert len(chunks) == 1

    def test_invalid_chunk_size(self, tmp_path):
        g = EdgeList.from_pairs(2, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        with pytest.raises(ValueError):
            list(stream_edge_chunks(path, chunk_edges=0))

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 5\n0 1 1.0\n")
        with pytest.raises(ValueError):
            list(stream_edge_chunks(path))


class TestSemiExternalCC:
    def test_matches_networkx(self, tmp_path):
        g = erdos_renyi(300, 450, philox_stream(92))
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        labels, count = cc_semi_external(path, g.n, chunk_edges=64)
        assert count == networkx_components(g)
        assert (labels[g.u] == labels[g.v]).all()

    def test_matches_in_memory_cc(self, tmp_path):
        from repro.core import cc_sequential

        g = erdos_renyi(150, 200, philox_stream(93))
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        ext_labels, ext_count = cc_semi_external(path, g.n)
        mem_labels, mem_count = cc_sequential(g, seed=0)
        assert ext_count == mem_count

    def test_bounded_memory_instrumented(self, tmp_path):
        """Only the parent array is ever resident — semi-external claim."""
        from repro.cache import LRUTracker

        g = erdos_renyi(100, 2000, philox_stream(94))
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        mem = LRUTracker(M=4096, B=8)
        labels, count = cc_semi_external(path, g.n, chunk_edges=128, mem=mem)
        assert count == networkx_components(g)
        # resident working set = parent array only: misses ~ n/B, far below m
        assert mem.miss_count < g.m / 2

    def test_empty_graph(self, tmp_path):
        g = EdgeList.empty(5)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        labels, count = cc_semi_external(path, 5)
        assert count == 5

    def test_endpoint_out_of_range(self, tmp_path):
        g = EdgeList.from_pairs(4, [(0, 3)])
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        with pytest.raises(ValueError):
            cc_semi_external(path, 2)

    def test_negative_n(self, tmp_path):
        g = EdgeList.empty(1)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        with pytest.raises(ValueError):
            cc_semi_external(path, -1)
