"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "o a" in lines[-1]
        assert any("o" in ln for ln in lines[1:-1])

    def test_bounds_labels(self):
        out = ascii_chart([1, 10], {"a": [5.0, 50.0]})
        assert "50" in out
        assert "5" in out
        assert "10" in out

    def test_multiple_series_glyphs(self):
        out = ascii_chart([1, 2], {"a": [1, 2], "b": [2, 1], "c": [1, 1]})
        legend = out.splitlines()[-1]
        assert "o a" in legend and "x b" in legend and "* c" in legend

    def test_log_scale_marks(self):
        out = ascii_chart([1, 100], {"a": [1.0, 1000.0]}, logx=True, logy=True)
        assert "[log x, log y]" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [1, 2]}, logx=True)
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [0, 2]}, logy=True)

    def test_constant_series(self):
        out = ascii_chart([1, 2, 3], {"a": [7.0, 7.0, 7.0]})
        assert "7" in out  # degenerate y-range handled

    def test_misaligned_series(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]})

    def test_empty_series(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {})

    def test_canvas_too_small(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1, 2]}, width=4)

    def test_dimensions(self):
        out = ascii_chart([1, 2], {"a": [1, 2]}, width=30, height=8)
        rows = [ln for ln in out.splitlines() if "|" in ln]
        assert len(rows) == 8
        assert all(len(ln.split("|", 1)[1]) == 30 for ln in rows)
