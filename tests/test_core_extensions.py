"""Tests for the library extensions: all-minimum-cuts (Lemma 4.3),
weight preprocessing (§2.3), spanning forest, clustering, engine trace."""

import numpy as np
import pytest

from repro.bsp import Engine
from repro.core import (
    contract_heavy_edges,
    min_weighted_degree,
    mincut_clustering,
    minimum_cut,
    minimum_cuts,
    minimum_spanning_forest,
    relative_cut_criterion,
)
from repro.core.karger_stein import (
    brute_force_matrix_all,
    canonical_cut_key,
    karger_stein_matrix_all,
)
from repro.graph import (
    AdjacencyMatrix,
    EdgeList,
    complete_graph,
    erdos_renyi,
    grid_graph,
    ring_of_cliques,
    two_cliques_bridge,
    weighted_cycle,
)
from repro.graph.validate import brute_force_mincut, networkx_components
from repro.rng import philox_stream


class TestCanonicalCutKey:
    def test_complement_same_key(self):
        side = np.array([False, True, True, False])
        assert canonical_cut_key(side) == canonical_cut_key(~side)

    def test_distinct_cuts_distinct_keys(self):
        a = np.array([False, True, False])
        b = np.array([False, False, True])
        assert canonical_cut_key(a) != canonical_cut_key(b)


class TestBruteForceAll:
    def test_k4_four_singletons(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(4)).a
        val, sides = brute_force_matrix_all(a)
        assert val == 3.0
        assert len(sides) == 4
        for s in sides:
            assert s.sum() in (1, 3)

    def test_tied_pair(self):
        # cuts: {0} -> 6, {1} -> 6, {2} -> 10: two tied minima
        g = EdgeList.from_pairs(3, [(0, 1, 1.0), (1, 2, 5.0), (0, 2, 5.0)])
        val, sides = brute_force_matrix_all(AdjacencyMatrix.from_edgelist(g).a)
        assert val == 6.0
        assert len(sides) == 2

    def test_unique_minimum(self):
        g = EdgeList.from_pairs(3, [(0, 1, 1.0), (1, 2, 5.0), (0, 2, 7.0)])
        val, sides = brute_force_matrix_all(AdjacencyMatrix.from_edgelist(g).a)
        assert val == 6.0
        assert len(sides) == 1


class TestKargerSteinAll:
    def test_collects_ties_on_cycle(self):
        g = weighted_cycle(6)
        a = AdjacencyMatrix.from_edgelist(g).a
        found = {}
        for seed in range(12):
            val, cuts = karger_stein_matrix_all(a, philox_stream(seed))
            if val == 2.0:
                found.update(cuts)
        assert len(found) == 15  # C(6,2) pairs of cycle edges

    def test_values_match_single_variant(self):
        g = erdos_renyi(12, 40, philox_stream(30), weighted=True)
        a = AdjacencyMatrix.from_edgelist(g).a
        val, cuts = karger_stein_matrix_all(a, philox_stream(0))
        for side in cuts.values():
            assert g.cut_value(side) == pytest.approx(val)


class TestMinimumCuts:
    def test_cycle_all_cuts(self):
        g = weighted_cycle(5)
        res = minimum_cuts(g, p=3, seed=1, trials=60)
        assert res.value == 2.0
        assert len(res.sides) == 10  # C(5,2)
        for s in res.sides:
            assert g.cut_value(s) == 2.0

    def test_unique_cut(self):
        g = two_cliques_bridge(6)
        res = minimum_cuts(g, p=2, seed=1)
        assert res.value == 1.0
        assert len(res.sides) == 1

    def test_value_matches_single_cut_api(self):
        g = erdos_renyi(30, 150, philox_stream(31), weighted=True)
        single = minimum_cut(g, p=2, seed=5)
        multi = minimum_cuts(g, p=2, seed=5)
        assert multi.value == single.value

    def test_no_duplicate_sides(self):
        g = complete_graph(5)
        res = minimum_cuts(g, p=2, seed=3, trials=30)
        keys = {canonical_cut_key(s) for s in res.sides}
        assert len(keys) == len(res.sides) == 5

    def test_group_parallel_mode(self):
        g = weighted_cycle(6)
        res = minimum_cuts(g, p=6, seed=2, trials=2)  # p > trials
        assert res.value == 2.0
        assert len(res.sides) >= 1


class TestPreprocess:
    def test_min_weighted_degree(self):
        g = EdgeList.from_pairs(3, [(0, 1, 3.0), (1, 2, 5.0)])
        assert min_weighted_degree(g) == 3.0

    def test_contracts_provably_safe_edges(self):
        g = EdgeList.from_pairs(4, [(0, 1, 10.0), (1, 2, 10.0), (2, 3, 1.0)])
        h, labels = contract_heavy_edges(g)
        assert h.n == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]

    def test_preserves_mincut_value(self):
        for seed in range(5):
            g = erdos_renyi(12, 36, philox_stream(seed + 40), weighted=True)
            # add a pendant so heavy edges exist
            g = EdgeList(
                13,
                np.concatenate([g.u, [0]]),
                np.concatenate([g.v, [12]]),
                np.concatenate([g.w, [0.5]]),
            )
            before = brute_force_mincut(g)
            h, labels = contract_heavy_edges(g)
            if h.n >= 2:
                assert brute_force_mincut(h) == pytest.approx(before)

    def test_nothing_to_contract(self):
        g = complete_graph(5)
        h, labels = contract_heavy_edges(g)
        assert h.n == 5
        assert np.array_equal(labels, np.arange(5))

    def test_disconnected_untouched(self):
        g = EdgeList.from_pairs(4, [(0, 1, 9.0)])  # isolated vertices
        h, labels = contract_heavy_edges(g)
        assert h.n == 4

    def test_minimum_cut_with_preprocess(self):
        g = EdgeList.from_pairs(5, [(0, 1, 20.0), (1, 2, 20.0), (2, 3, 2.0),
                                    (3, 4, 20.0), (0, 4, 3.0)])
        plain = minimum_cut(g, p=2, seed=1)
        pre = minimum_cut(g, p=2, seed=1, preprocess=True)
        assert pre.value == plain.value
        assert g.cut_value(pre.side) == pre.value


class TestSpanningForest:
    def _nx_msf_weight(self, g):
        import networkx as nx

        h = nx.Graph()
        h.add_nodes_from(range(g.n))
        for u, v, w in g.as_tuples():
            if not h.has_edge(u, v) or h[u][v]["weight"] > w:
                h.add_edge(u, v, weight=w)
        forest = nx.minimum_spanning_edges(h, data=True)
        return sum(d["weight"] for _, _, d in forest)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_networkx(self, p):
        g = erdos_renyi(120, 400, philox_stream(50), weighted=True)
        res = minimum_spanning_forest(g, p=p, seed=1)
        assert res.total_weight == pytest.approx(self._nx_msf_weight(g))

    def test_forest_structure(self):
        g = erdos_renyi(80, 200, philox_stream(51), weighted=True)
        res = minimum_spanning_forest(g, p=3, seed=2)
        assert res.forest.m == g.n - res.n_components
        assert res.n_components == networkx_components(g)
        # forest edges connect exactly the input's components
        assert networkx_components(res.forest) == res.n_components

    def test_deterministic(self):
        g = erdos_renyi(60, 150, philox_stream(52), weighted=True)
        a = minimum_spanning_forest(g, p=2, seed=3)
        b = minimum_spanning_forest(g, p=4, seed=9)
        # Boruvka with edge-id tie-break: identical forest regardless of p/seed
        assert sorted(a.forest.as_tuples()) == sorted(b.forest.as_tuples())

    def test_parallel_edges(self):
        g = EdgeList.from_pairs(3, [(0, 1, 5.0), (0, 1, 1.0), (1, 2, 2.0)])
        res = minimum_spanning_forest(g, p=2, seed=0)
        assert res.total_weight == 3.0

    def test_unweighted_grid(self):
        g = grid_graph(5, 5)
        res = minimum_spanning_forest(g, p=3, seed=0)
        assert res.forest.m == 24
        assert res.total_weight == 24.0

    def test_empty_graph(self):
        g = EdgeList.empty(4)
        res = minimum_spanning_forest(g, p=2, seed=0)
        assert res.forest.m == 0
        assert res.n_components == 4

    def test_logarithmic_rounds(self):
        g = erdos_renyi(256, 1024, philox_stream(53), weighted=True)
        res = minimum_spanning_forest(g, p=4, seed=1)
        # Boruvka halves components per round: O(log n) * O(1) supersteps
        assert res.report.supersteps <= 12 * 4


class TestClustering:
    def test_ring_of_cliques(self):
        g = ring_of_cliques(5, 5)
        res = mincut_clustering(g, p=4, seed=1)
        assert res.n_clusters == 5
        sizes = sorted(len(c) for c in res.clusters())
        assert sizes == [5] * 5

    def test_labels_dense(self):
        g = ring_of_cliques(3, 4)
        res = mincut_clustering(g, p=2, seed=2)
        assert set(np.unique(res.labels)) == set(range(res.n_clusters))

    def test_disconnected_split_first(self):
        g = EdgeList.from_pairs(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        res = mincut_clustering(g, p=2, seed=3)
        assert res.n_clusters == 2
        assert res.labels[0] != res.labels[3]

    def test_max_clusters_cap(self):
        g = ring_of_cliques(6, 4)
        res = mincut_clustering(g, p=2, seed=4, max_clusters=3)
        assert res.n_clusters <= 3

    def test_min_cluster_floor(self):
        g = weighted_cycle(8)
        res = mincut_clustering(g, p=2, seed=5, min_cluster=8)
        assert res.n_clusters == 1

    def test_single_cluster_when_dense(self):
        g = complete_graph(10)
        res = mincut_clustering(g, p=2, seed=6)
        assert res.n_clusters == 1

    def test_custom_criterion(self):
        g = ring_of_cliques(4, 4)
        # never accept: splits all the way to min_cluster
        res = mincut_clustering(
            g, p=2, seed=7, accept=lambda sub, val: False, min_cluster=2
        )
        assert res.n_clusters >= 8

    def test_relative_cut_criterion(self):
        accept = relative_cut_criterion(0.5)
        dense = complete_graph(6)
        assert accept(dense, 5.0)       # K6: cut 5 vs density 5
        sparse = weighted_cycle(12)
        assert not accept(sparse, 0.5)  # cheap cut vs density 2


class TestEngineTrace:
    def test_trace_records_collectives(self):
        import operator

        def prog(ctx):
            yield from ctx.comm.barrier()
            x = yield from ctx.comm.allreduce(1, op=operator.add)
            return x

        eng = Engine(trace=True)
        res = eng.run(prog, 3)
        assert res.trace_kinds() == ["barrier", "allreduce"]
        assert res.trace[1].participants == (0, 1, 2)

    def test_no_trace_by_default(self):
        def prog(ctx):
            yield from ctx.comm.barrier()

        res = Engine().run(prog, 2)
        assert res.trace is None
        with pytest.raises(ValueError):
            res.trace_kinds()

    def test_sparsification_schedule_visible(self):
        """The §3.1 schedule: scalar-weight gather, then the typed path —
        a counts scatterv and the sampled-edges gatherv."""
        from repro.core.sparsify import sparsify_weighted

        g = erdos_renyi(40, 120, philox_stream(54), weighted=True)
        slices = g.slices(2)

        def prog(ctx):
            sl = slices[ctx.rank]
            out = yield from sparsify_weighted(ctx, ctx.comm, sl.u, sl.v, sl.w, 16)
            return out

        eng = Engine(trace=True)
        res = eng.run(prog, 2, seed=1)
        assert res.trace_kinds() == ["gather", "scatterv", "gatherv"]
