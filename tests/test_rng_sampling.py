"""Tests for weighted sampling primitives (incl. distribution properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    AliasSampler,
    CumulativeWeightSampler,
    multinomial_split,
    sample_without_replacement,
)
from repro.rng.streams import philox_stream


def chi_square_ok(observed, expected, slack=6.0):
    """Loose chi-square sanity bound (expected counts must be > 0)."""
    observed = np.asarray(observed, dtype=float)
    expected = np.asarray(expected, dtype=float)
    stat = ((observed - expected) ** 2 / expected).sum()
    dof = max(1, observed.size - 1)
    return stat < slack * dof


class TestCumulativeWeightSampler:
    def test_respects_weights(self):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        s = CumulativeWeightSampler(w)
        rng = philox_stream(0)
        idx = s.sample(rng, 40_000)
        counts = np.bincount(idx, minlength=4)
        assert chi_square_ok(counts, 40_000 * w / w.sum())

    def test_zero_weight_never_sampled(self):
        w = np.array([1.0, 0.0, 1.0])
        s = CumulativeWeightSampler(w)
        idx = s.sample(philox_stream(1), 10_000)
        assert not (idx == 1).any()

    def test_single_element(self):
        s = CumulativeWeightSampler(np.array([5.0]))
        assert (s.sample(philox_stream(2), 100) == 0).all()

    def test_k_zero(self):
        s = CumulativeWeightSampler(np.array([1.0, 1.0]))
        assert s.sample(philox_stream(0), 0).size == 0

    def test_len_and_total(self):
        s = CumulativeWeightSampler(np.array([1.0, 3.0]))
        assert len(s) == 2
        assert s.total == 4.0

    @pytest.mark.parametrize("bad", [
        np.zeros(0), np.array([[1.0]]), np.array([-1.0, 2.0]), np.array([0.0, 0.0]),
    ])
    def test_invalid_weights(self, bad):
        with pytest.raises(ValueError):
            CumulativeWeightSampler(bad)

    def test_negative_k(self):
        s = CumulativeWeightSampler(np.array([1.0]))
        with pytest.raises(ValueError):
            s.sample(philox_stream(0), -1)


class TestAliasSampler:
    def test_respects_weights(self):
        w = np.array([10.0, 1.0, 5.0, 4.0])
        s = AliasSampler(w)
        idx = s.sample(philox_stream(3), 40_000)
        counts = np.bincount(idx, minlength=4)
        assert chi_square_ok(counts, 40_000 * w / w.sum())

    def test_matches_cumulative_distribution(self):
        w = philox_stream(4).random(32) + 0.01
        a = AliasSampler(w).sample(philox_stream(5), 50_000)
        c = CumulativeWeightSampler(w).sample(philox_stream(6), 50_000)
        ca = np.bincount(a, minlength=32) / 50_000
        cc = np.bincount(c, minlength=32) / 50_000
        assert np.abs(ca - cc).max() < 0.01

    def test_uniform_weights(self):
        s = AliasSampler(np.ones(8))
        idx = s.sample(philox_stream(7), 16_000)
        counts = np.bincount(idx, minlength=8)
        assert chi_square_ok(counts, np.full(8, 2000.0))

    @pytest.mark.parametrize("bad", [
        np.zeros(0), np.array([-1.0, 2.0]), np.array([0.0, 0.0]),
    ])
    def test_invalid_weights(self, bad):
        with pytest.raises(ValueError):
            AliasSampler(bad)

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_always_in_range(self, weights):
        s = AliasSampler(np.array(weights))
        idx = s.sample(philox_stream(0), 200)
        assert idx.min() >= 0 and idx.max() < len(weights)


class TestMultinomialSplit:
    def test_total_preserved(self):
        counts = multinomial_split(philox_stream(1), 1000, np.array([1.0, 2.0, 3.0]))
        assert counts.sum() == 1000

    def test_zero_weight_bin_gets_nothing(self):
        counts = multinomial_split(philox_stream(2), 500, np.array([1.0, 0.0, 1.0]))
        assert counts[1] == 0

    def test_proportionality(self):
        w = np.array([1.0, 4.0])
        totals = np.zeros(2)
        for seed in range(30):
            totals += multinomial_split(philox_stream(seed), 1000, w)
        assert abs(totals[1] / totals.sum() - 0.8) < 0.02

    def test_zero_total(self):
        counts = multinomial_split(philox_stream(0), 0, np.array([1.0]))
        assert counts.sum() == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            multinomial_split(philox_stream(0), -1, np.array([1.0]))
        with pytest.raises(ValueError):
            multinomial_split(philox_stream(0), 5, np.array([0.0]))
        with pytest.raises(ValueError):
            multinomial_split(philox_stream(0), 5, np.zeros(0))

    @given(st.integers(min_value=0, max_value=5000),
           st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_sum_property(self, total, weights):
        counts = multinomial_split(philox_stream(0), total, np.array(weights))
        assert counts.sum() == total
        assert (counts >= 0).all()


class TestSampleWithoutReplacement:
    def test_distinct(self):
        idx = sample_without_replacement(philox_stream(1), 100, 50)
        assert np.unique(idx).size == 50

    def test_full_population(self):
        idx = sample_without_replacement(philox_stream(1), 10, 10)
        assert sorted(idx.tolist()) == list(range(10))

    def test_invalid(self):
        with pytest.raises(ValueError):
            sample_without_replacement(philox_stream(1), 5, 6)
        with pytest.raises(ValueError):
            sample_without_replacement(philox_stream(1), 5, -1)
