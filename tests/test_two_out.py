"""Tests for the random 2-out contraction preprocessing (repro.core.two_out).

Covers the kernel (fast == scalar reference, byte for byte), the
preprocessing plan (p-/backend-invariance of the contracted graphs), the
end-to-end ``variant="2out"`` pipeline (exact values on the verification
suite and on planted-cut dense graphs, degrade bit-identity with the
default pipeline) and the CLI surface.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    minimum_cut,
    minimum_cut_sequential,
    plan_two_out,
    replica_count,
    singleton_cut,
    two_out_minimum_cut,
)
from repro.core.two_out import (
    MIN_DEGREE_GUARD,
    PRESERVATION_PROB,
    REPLICA_TRIAL_PROB,
)
from repro.graph import (
    EdgeList,
    clustered_er,
    erdos_renyi,
    star_graph,
    verification_suite,
    weighted_cycle,
)
from repro.kernels import scalar_two_out_sample, two_out_sample
from repro.rng import philox_stream
from repro.sched import TrialScheduler
from tests.conftest import require_mp

SEED = 11


@pytest.fixture
def dense_clustered():
    """Dense two-cluster graph with a planted non-singleton min cut of 4."""
    return clustered_er(256, 24, philox_stream(77))


class TestTwoOutSampleKernel:
    def graphs(self):
        rng = philox_stream(5)
        yield erdos_renyi(40, 160, rng, weighted=True)
        yield erdos_renyi(64, 96, rng)  # sparse, some isolated vertices
        yield weighted_cycle(12, np.arange(1.0, 13.0))
        yield star_graph(9)
        yield EdgeList.from_pairs(5, [(0, 1, 2.5), (0, 1, 0.5), (2, 3, 1.0)])

    def test_fast_matches_scalar_reference(self):
        for i, g in enumerate(self.graphs()):
            fast = two_out_sample(
                g.n, g.u, g.v, g.w, philox_stream(100 + i))
            slow = two_out_sample(
                g.n, g.u, g.v, g.w, philox_stream(100 + i), slow=True)
            for a, b in zip(fast, slow):
                assert a.dtype == b.dtype == np.int64
                assert a.tobytes() == b.tobytes()

    def test_consumes_exactly_2n_draws(self):
        g = erdos_renyi(30, 90, philox_stream(6), weighted=True)
        rng_a, rng_b = philox_stream(9), philox_stream(9)
        two_out_sample(g.n, g.u, g.v, g.w, rng_a)
        rng_b.random(2 * g.n)
        assert rng_a.random() == rng_b.random()

    def test_sampled_edges_are_incident(self):
        g = erdos_renyi(50, 200, philox_stream(7), weighted=True)
        e1, e2 = two_out_sample(g.n, g.u, g.v, g.w, philox_stream(8))
        for x in range(g.n):
            for e in (e1[x], e2[x]):
                assert e >= 0
                assert x in (g.u[e], g.v[e])

    def test_isolated_vertices_get_minus_one(self):
        g = EdgeList.from_pairs(4, [(0, 1)])
        e1, e2 = two_out_sample(g.n, g.u, g.v, g.w, philox_stream(3))
        assert list(e1[2:]) == [-1, -1] and list(e2[2:]) == [-1, -1]
        assert set(e1[:2]) == set(e2[:2]) == {0}

    def test_scalar_reference_direct(self):
        g = erdos_renyi(20, 60, philox_stream(4), weighted=True)
        draws = philox_stream(2).random(2 * g.n)
        e1, e2 = scalar_two_out_sample(g.n, g.u, g.v, g.w, draws)
        assert len(e1) == len(e2) == g.n


class TestPlanInvariance:
    def test_plan_invariant_to_p(self, dense_clustered):
        plans = [plan_two_out(dense_clustered, p, seed=SEED)
                 for p in (1, 2, 5)]
        ref = plans[0]
        for plan in plans[1:]:
            assert plan.contracted_n == ref.contracted_n
            assert plan.trials_per_replica == ref.trials_per_replica
            for (au, av, aw, al, ak), (bu, bv, bw, bl, bk) in zip(
                    plan.contractions, ref.contractions):
                assert ak == bk
                assert au.tobytes() == bu.tobytes()
                assert av.tobytes() == bv.tobytes()
                assert aw.tobytes() == bw.tobytes()
                assert al.tobytes() == bl.tobytes()

    def test_plan_bit_identical_sim_vs_mp(self, dense_clustered):
        require_mp()
        sim = plan_two_out(dense_clustered, 2, seed=SEED, backend="sim")
        mp = plan_two_out(dense_clustered, 2, seed=SEED, backend="mp")
        assert sim.contracted_n == mp.contracted_n
        assert sim.contracted_m == mp.contracted_m
        assert sim.trials_per_replica == mp.trials_per_replica
        for (su, sv, sw, sl, sk), (mu, mv, mw, ml, mk) in zip(
                sim.contractions, mp.contractions):
            assert sk == mk
            assert su.tobytes() == mu.tobytes()
            assert sv.tobytes() == mv.tobytes()
            assert sw.tobytes() == mw.tobytes()
            assert sl.tobytes() == ml.tobytes()

    def test_seed_changes_contractions(self, dense_clustered):
        a = plan_two_out(dense_clustered, 2, seed=1)
        b = plan_two_out(dense_clustered, 2, seed=2)
        assert any(
            x[3].tobytes() != y[3].tobytes()
            for x, y in zip(a.contractions, b.contractions)
        )

    def test_dense_plan_wins_big(self, dense_clustered):
        plan = plan_two_out(dense_clustered, 4, seed=SEED)
        assert not plan.degraded
        assert all(k >= 2 for k in plan.contracted_n)
        assert all(t >= 1 for t in plan.trials_per_replica)
        assert plan.reduction >= 3.0
        assert plan.total_trials * 3 <= plan.default_trials

    def test_sparse_plan_degrades(self):
        plan = plan_two_out(weighted_cycle(32), 2, seed=SEED)
        # cycle degree 2 < MIN_DEGREE_GUARD: no round runs, budgets match
        # the uncontracted graph and the default pipeline wins
        assert plan.degraded
        assert plan.contracted_n == (32,) * plan.replicas
        assert plan.reduction == 1.0


class TestUnits:
    def test_replica_count_monotone(self):
        assert replica_count(0.5) <= replica_count(0.9) <= replica_count(0.999)
        assert replica_count(0.9) >= 1

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_replica_count_domain(self, bad):
        with pytest.raises(ValueError):
            replica_count(bad)

    def test_constants_sane(self):
        assert 0 < PRESERVATION_PROB < 1
        assert 0 < REPLICA_TRIAL_PROB < 1
        assert MIN_DEGREE_GUARD >= 3

    def test_singleton_cut_star(self):
        value, side = singleton_cut(star_graph(6))
        assert value == 1.0
        assert side.sum() == 1 and not side[0]  # a leaf, not the hub

    def test_singleton_cut_needs_two_vertices(self):
        with pytest.raises(ValueError):
            singleton_cut(EdgeList.empty(1))

    def test_checkpointing_scheduler_rejected(self, dense_clustered, tmp_path):
        sched = TrialScheduler(checkpoint=str(tmp_path / "ledger.jsonl"))
        with pytest.raises(ValueError, match="checkpoint"):
            two_out_minimum_cut(dense_clustered, 2, seed=SEED,
                                scheduler=sched)

    def test_variant_validation(self, dense_clustered):
        with pytest.raises(ValueError, match="variant"):
            minimum_cut(dense_clustered, 2, seed=SEED, variant="3out")
        with pytest.raises(ValueError, match="trial budget"):
            minimum_cut(dense_clustered, 2, seed=SEED, variant="2out",
                        trials=5)


class TestEndToEnd:
    def test_verification_suite_exact(self, backend):
        if backend == "mp":
            require_mp()
        for case in verification_suite():
            res = minimum_cut(case.graph, 2, seed=SEED, variant="2out",
                              backend=backend)
            want = (case.mincut if case.mincut is not None
                    else minimum_cut_sequential(case.graph, seed=SEED)[0])
            assert res.value == want, case.name
            assert res.variant == "2out"
            assert res.two_out is not None

    def test_planted_cut_found(self, dense_clustered):
        res = minimum_cut(dense_clustered, 4, seed=SEED, variant="2out")
        assert res.value == 4.0
        assert dense_clustered.cut_value(res.side) == 4.0
        assert not res.two_out.degraded
        assert res.two_out.reduction >= 3.0
        assert res.achieved_success_prob >= 0.9
        assert res.ledger is None

    def test_statistical_exactness(self):
        """The pipeline is exact across families and seeds, not just lucky."""
        rng = philox_stream(21)
        graphs = [
            clustered_er(96, 16, rng, bridges=2),
            clustered_er(120, 20, rng, clusters=3, bridges=3),
            erdos_renyi(48, 288, rng, weighted=True),
        ]
        for gi, g in enumerate(graphs):
            truth = minimum_cut_sequential(g, seed=3)[0]
            for s in range(4):
                res = minimum_cut(g, 3, seed=200 + s, variant="2out")
                assert res.value == truth, (gi, s)
                assert abs(g.cut_value(res.side) - res.value) < 1e-12

    def test_result_invariant_to_p_and_backend(self, dense_clustered):
        ref = minimum_cut(dense_clustered, 1, seed=SEED, variant="2out")
        for p in (2, 5):
            res = minimum_cut(dense_clustered, p, seed=SEED, variant="2out")
            assert res.value == ref.value
            assert res.side.tobytes() == ref.side.tobytes()
            assert res.two_out == ref.two_out

    def test_result_invariant_to_wave_size(self, dense_clustered):
        ref = minimum_cut(dense_clustered, 2, seed=SEED, variant="2out")
        waved = minimum_cut(dense_clustered, 2, seed=SEED, variant="2out",
                            scheduler=TrialScheduler(wave_size=1))
        assert waved.value == ref.value
        assert waved.side.tobytes() == ref.side.tobytes()

    def test_degraded_matches_default_bitwise(self):
        g = weighted_cycle(24, np.arange(2.0, 26.0))
        default = minimum_cut(g, 2, seed=SEED)
        res = minimum_cut(g, 2, seed=SEED, variant="2out")
        assert res.two_out.degraded
        assert res.value == default.value
        assert res.side.tobytes() == default.side.tobytes()
        assert res.trials == default.trials
        assert res.variant == "2out" and default.variant == "default"

    def test_summary_accounting(self, dense_clustered):
        res = minimum_cut(dense_clustered, 2, seed=SEED, variant="2out")
        s = res.two_out
        assert s.total_trials == sum(s.trials_per_replica)
        assert s.replica_completed == s.trials_per_replica
        assert len(s.contracted_n) == s.replicas
        assert res.trials == s.total_trials


class TestCli:
    @pytest.fixture
    def dense_file(self, tmp_path):
        from repro.graph import write_edgelist

        path = tmp_path / "dense.txt"
        write_edgelist(clustered_er(128, 16, philox_stream(31)), str(path))
        return path

    def test_variant_2out_runs(self, dense_file, capsys):
        rc = main(["square_root", str(dense_file), "--procs", "2",
                   "--seed", "7", "--variant", "2out"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "two_out:" in out
        assert "reduction" in out

    def test_variant_default_prints_no_summary(self, dense_file, capsys):
        rc = main(["square_root", str(dense_file), "--procs", "2",
                   "--seed", "7", "--trial-scale", "0.05"])
        assert rc == 0
        assert "two_out:" not in capsys.readouterr().out

    def test_unknown_variant_is_usage_error(self, dense_file):
        with pytest.raises(SystemExit) as exc:
            main(["square_root", str(dense_file), "--variant", "3out"])
        assert exc.value.code == 2

    @pytest.mark.parametrize("extra", [
        ["--trials", "5"],
        ["--checkpoint", "ledger.jsonl"],
        ["--checkpoint", "ledger.jsonl", "--resume"],
    ])
    def test_incompatible_flags_are_usage_errors(self, dense_file, extra,
                                                 capsys):
        with pytest.raises(SystemExit) as exc:
            main(["square_root", str(dense_file), "--variant", "2out"]
                 + extra)
        assert exc.value.code == 2
        assert "--variant 2out" in capsys.readouterr().err

    def test_retry_flags_still_work_with_2out(self, dense_file, capsys):
        rc = main(["square_root", str(dense_file), "--procs", "2",
                   "--seed", "7", "--variant", "2out", "--max-retries", "1"])
        assert rc == 0
        assert "two_out:" in capsys.readouterr().out
