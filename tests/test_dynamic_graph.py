"""repro.dynamic: differential fuzz, determinism, sparsifier amortization.

The load-bearing property is the determinism contract from
``docs/dynamic.md``:

* ``query_components()`` and exact ``query_cut()`` are **history
  independent** — bit-identical to a from-scratch computation on the
  same epoch's snapshot, no matter which queries happened earlier and
  no matter which of incremental / forest / cc_kernel paths answered;
* approx ``query_cut()`` is **replay deterministic** — a pure function
  of (initial graph, update+query history, seed, p), because sparsifier
  rebuilds are query-triggered.

Everything here fuzzes those claims against the trusted kernels on the
epoch snapshot, across both execution backends.
"""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraph,
    canonical_roots,
    update_stream,
)
from repro.graph import EdgeList, erdos_renyi, two_cliques_bridge
from repro.kernels import cc_labels
from repro.rng import philox_stream

from .conftest import require_mp


def churn(n=80, m=240, seed=0, batches=6, batch_size=12, **kw):
    g = erdos_renyi(n, m, philox_stream(seed + 17), weighted=True)
    stream = list(update_stream(g, seed=seed + 1, batches=batches,
                                batch_size=batch_size, **kw))
    return g, stream


def reference_labels(snap: EdgeList) -> tuple[np.ndarray, int]:
    """Trusted from-scratch labels in the canonical cc_labels form."""
    labels, count = cc_labels(snap.n, snap.u, snap.v)
    return labels, count


# -- canonical_roots ----------------------------------------------------------


def test_canonical_roots_projects_any_dense_labelling():
    # two classes {0,2,4} and {1,3}; ids assigned in either order must
    # project onto the same min-vertex root array
    for labs in ([0, 1, 0, 1, 0], [1, 0, 1, 0, 1]):
        roots = canonical_roots(np.array(labs))
        assert roots.tolist() == [0, 1, 0, 1, 0]


def test_canonical_roots_matches_cc_labels_on_random_graphs():
    for seed in range(5):
        g = erdos_renyi(60, 90, philox_stream(seed))
        labels, count = cc_labels(g.n, g.u, g.v)
        roots = canonical_roots(labels)
        uniq, dense = np.unique(roots, return_inverse=True)
        assert uniq.size == count
        assert np.array_equal(dense, labels)
        # roots really are the minimum member of each class
        for r in uniq.tolist():
            members = np.flatnonzero(roots == r)
            assert members.min() == r


# -- update semantics ---------------------------------------------------------


def test_update_validation():
    g = EdgeList.from_pairs(4, [(0, 1), (1, 2)])
    dyn = DynamicGraph(g, p=2, seed=0)
    with pytest.raises(ValueError):
        dyn.update_edges([("frobnicate", 0, 1)])
    with pytest.raises(ValueError):
        dyn.update_edges([("insert", 0, 0, 1.0)])       # self-loop
    with pytest.raises(ValueError):
        dyn.update_edges([("insert", 0, 9, 1.0)])       # out of range
    with pytest.raises(ValueError):
        dyn.update_edges([("insert", 0, 3, -1.0)])      # bad weight
    with pytest.raises(KeyError):
        dyn.update_edges([("delete", 0, 3)])            # missing edge
    with pytest.raises(KeyError):
        dyn.update_edges([("reweight", 0, 3, 2.0)])     # missing edge


def test_insert_existing_edge_combines_weights():
    g = EdgeList.from_pairs(3, [(0, 1)])
    dyn = DynamicGraph(g, p=2, seed=0)
    dyn.update_edges([("insert", 1, 0, 2.5)])   # reversed orientation too
    snap = dyn.snapshot()
    assert snap.m == 1
    assert snap.w[0] == pytest.approx(3.5)


def test_epoch_closes_per_batch_and_snapshot_is_frozen():
    g = EdgeList.from_pairs(4, [(0, 1), (2, 3)])
    dyn = DynamicGraph(g, p=2, seed=0)
    assert dyn.epoch == 0
    fp0 = dyn.fingerprint()
    st = dyn.update_edges([("insert", 1, 2, 1.0), ("delete", 2, 3)])
    assert dyn.epoch == 1 and st["epoch"] == 1
    snap = dyn.snapshot()
    for a in (snap.u, snap.v, snap.w):
        assert not a.flags.writeable
    assert dyn.fingerprint() != fp0
    # canonical order: snapshot ignores arrival order of updates
    keys = list(zip(snap.u.tolist(), snap.v.tolist()))
    assert keys == sorted(keys)


def test_staleness_fingerprint_is_lazy():
    g, stream = churn(batches=2)
    dyn = DynamicGraph(g, p=2, seed=0)
    st = dyn.update_edges(stream[0])
    # no query materialized the snapshot yet: updates stay O(alpha)
    assert st["fingerprint"] is None
    assert dyn.query_components().fingerprint is None
    fp = dyn.fingerprint()                      # forces the snapshot
    assert dyn.staleness()["fingerprint"] == fp


# -- differential fuzz: components --------------------------------------------


def test_components_match_scratch_every_epoch():
    g, stream = churn(n=120, m=360, seed=3, batches=10, batch_size=16)
    dyn = DynamicGraph(g, p=2, seed=3)
    vias = set()
    for ops in stream:
        dyn.update_edges(ops)
        cc = dyn.query_components()
        vias.add(cc.via)
        ref, count = reference_labels(dyn.snapshot())
        assert cc.n_components == count
        assert np.array_equal(cc.labels, ref)
        assert cc.epoch == dyn.epoch
    # the workload must actually exercise the incremental machinery
    assert dyn.counters["tree_deletes"] > 0
    assert "incremental" in vias


def test_components_heavy_delete_split_and_reconnect():
    # delete-heavy stream on a sparse graph: splits are guaranteed
    g, stream = churn(n=100, m=140, seed=5, batches=8, batch_size=12,
                      insert_frac=0.1, delete_frac=0.7)
    dyn = DynamicGraph(g, p=2, seed=5)
    for ops in stream:
        dyn.update_edges(ops)
        cc = dyn.query_components()
        ref, count = reference_labels(dyn.snapshot())
        assert cc.n_components == count
        assert np.array_equal(cc.labels, ref)
    assert dyn.counters["splits"] > 0
    assert dyn.counters["reconnects"] > 0


def test_tiny_reconnect_budget_falls_back_to_cc_kernel():
    g, stream = churn(n=100, m=140, seed=5, batches=6, batch_size=12,
                      insert_frac=0.1, delete_frac=0.7)
    dyn = DynamicGraph(g, p=2, seed=5, reconnect_budget=2)
    vias = set()
    for ops in stream:
        dyn.update_edges(ops)
        cc = dyn.query_components()
        vias.add(cc.via)
        ref, _count = reference_labels(dyn.snapshot())
        assert np.array_equal(cc.labels, ref)
    assert dyn.counters["cc_fallbacks"] > 0
    assert "cc_kernel" in vias


def test_connected_and_component_of_agree_with_labels():
    g, stream = churn(seed=7)
    dyn = DynamicGraph(g, p=2, seed=7)
    for ops in stream:
        dyn.update_edges(ops)
    cc = dyn.query_components()
    roots = canonical_roots(cc.labels)
    for x in range(0, g.n, 7):
        assert dyn.component_of(x) == roots[x]
        assert dyn.connected(x, (x * 3 + 1) % g.n) == \
            (cc.labels[x] == cc.labels[(x * 3 + 1) % g.n])


def test_components_backend_parity(backend):
    """Fallback answers are bit-identical under sim and mp."""
    g, stream = churn(n=90, m=130, seed=9, batches=5, batch_size=12,
                      insert_frac=0.1, delete_frac=0.7)
    dyn = DynamicGraph(g, p=2, seed=9, backend=backend,
                       reconnect_budget=2)   # force cc_kernel dispatches
    shas = []
    for ops in stream:
        dyn.update_edges(ops)
        cc = dyn.query_components()
        ref, _count = reference_labels(dyn.snapshot())
        assert np.array_equal(cc.labels, ref)
        shas.append(cc.labels.tobytes())
    assert dyn.counters["cc_fallbacks"] > 0
    # the per-epoch byte strings are a pure function of the stream: the
    # sim run of this same test is the cross-backend witness
    assert len(shas) == len(stream)


# -- cut queries --------------------------------------------------------------


def test_exact_cut_matches_scratch_two_out():
    from repro.core.two_out import two_out_minimum_cut
    from repro.dynamic.graph import _CUT_SALT

    g, stream = churn(n=48, m=300, seed=11, batches=3, batch_size=8)
    dyn = DynamicGraph(g, p=2, seed=11, trial_scale=0.2)
    for ops in stream:
        dyn.update_edges(ops)
    res = dyn.query_cut(mode="exact")
    snap = dyn.snapshot()
    seed = dyn._streams.spawn(_CUT_SALT).seed
    ref = two_out_minimum_cut(snap, 2, seed=seed, trial_scale=0.2,
                              backend="sim")
    assert res.value == ref.value
    assert res.witness_value == res.value
    assert res.fingerprint == dyn.fingerprint()
    # repeat query at the same epoch reuses the cached plan
    again = dyn.query_cut(mode="exact")
    assert again.value == res.value
    assert again.certificate["plan_cached"]


def test_exact_cut_history_independence():
    """Interleaved approx queries never move the exact answer."""
    g, stream = churn(n=48, m=300, seed=13, batches=4, batch_size=8)
    plain = DynamicGraph(g, p=2, seed=13, trial_scale=0.2)
    noisy = DynamicGraph(g, p=2, seed=13, trial_scale=0.2,
                         drift_threshold=0.05)
    for ops in stream:
        plain.update_edges(ops)
        noisy.update_edges(ops)
        noisy.query_cut(mode="approx")    # extra history on one side
    assert noisy.counters["resparsifications"] >= 1
    a = plain.query_cut(mode="exact")
    b = noisy.query_cut(mode="exact")
    assert a.value == b.value
    assert a.fingerprint == b.fingerprint


def test_approx_cut_replay_determinism_with_query_schedule():
    """Approx answers replay bit-identically under the same history."""
    g, stream = churn(n=60, m=240, seed=15, batches=6, batch_size=10)

    def run():
        dyn = DynamicGraph(g, p=2, seed=15, drift_threshold=0.05)
        shas = []
        for i, ops in enumerate(stream):
            dyn.update_edges(ops)
            if i % 2 == 1:
                r = dyn.query_cut(mode="approx")
                shas.append((r.value,
                             r.certificate["sparsifier_sha256"]))
        return shas, dyn.counters["resparsifications"]

    a, ra = run()
    b, rb = run()
    assert ra == rb and ra >= 1
    assert a == b


def test_approx_cut_witness_is_exact_on_true_graph():
    g = two_cliques_bridge(10, bridge_weight=2.0)
    dyn = DynamicGraph(g, p=2, seed=0)
    res = dyn.query_cut(mode="approx")
    assert res.side is not None
    assert res.witness_value == pytest.approx(
        dyn.snapshot().cut_value(res.side))
    cert = res.certificate
    assert cert["s"] > 0 and cert["rebuilds"] == 1
    assert cert["sparsifier_sha256"]


def test_disconnected_epoch_answers_zero_cut():
    g = EdgeList.from_pairs(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
    dyn = DynamicGraph(g, p=2, seed=0)
    for mode in ("exact", "approx"):
        res = dyn.query_cut(mode=mode)
        assert res.value == 0.0 and res.witness_value == 0.0
        assert res.certificate["disconnected"]
        assert dyn.snapshot().cut_value(res.side) == 0.0


def test_cut_backend_parity(backend):
    g, stream = churn(n=40, m=200, seed=17, batches=2, batch_size=8)
    dyn = DynamicGraph(g, p=2, seed=17, backend=backend, trial_scale=0.2,
                       drift_threshold=0.05)
    for ops in stream:
        dyn.update_edges(ops)
    exact = dyn.query_cut(mode="exact")
    approx = dyn.query_cut(mode="approx")
    # sim reference: the full contract is value equality across backends
    ref = DynamicGraph(g, p=2, seed=17, backend="sim", trial_scale=0.2,
                       drift_threshold=0.05)
    for ops in stream:
        ref.update_edges(ops)
    assert exact.value == ref.query_cut(mode="exact").value
    r_approx = ref.query_cut(mode="approx")
    assert approx.value == r_approx.value
    assert (approx.certificate["sparsifier_sha256"]
            == r_approx.certificate["sparsifier_sha256"])


# -- sparsifier amortization --------------------------------------------------


def test_sparsifier_drift_triggers_rebuild_only_past_threshold():
    g, stream = churn(n=60, m=240, seed=19, batches=6, batch_size=10)
    dyn = DynamicGraph(g, p=2, seed=19, drift_threshold=1e9)
    dyn.query_cut(mode="approx")                # initial rebuild
    assert dyn.counters["resparsifications"] == 1
    for ops in stream:
        dyn.update_edges(ops)
        dyn.query_cut(mode="approx")
    # astronomically high threshold: the initial base is never replaced
    assert dyn.counters["resparsifications"] == 1
    st = dyn.sparsifier.staleness()
    assert st["drift"] > 0 and not st["resparsify_pending"]

    eager = DynamicGraph(g, p=2, seed=19, drift_threshold=1e-6)
    eager.query_cut(mode="approx")
    for ops in stream:
        eager.update_edges(ops)
        eager.query_cut(mode="approx")
    # tiny threshold: every queried epoch re-sparsifies
    assert eager.counters["resparsifications"] == len(stream) + 1


def test_sparsifier_overlay_tracks_updates_between_rebuilds():
    g = two_cliques_bridge(8)
    dyn = DynamicGraph(g, p=2, seed=0, drift_threshold=1e9)
    dyn.query_cut(mode="approx")
    dyn.update_edges([("insert", 0, 12, 1.5)])
    st = dyn.sparsifier.staleness()
    assert st["overlay_edges"] == 1
    r = dyn.query_cut(mode="approx")
    assert r.certificate["overlay_edges"] == 1
    assert r.certificate["rebuilds"] == 1       # overlay, not a rebuild


def test_sparsifier_certificate_estimates_cuts():
    # the sparsifier estimate of the bridge cut must be within a few
    # multiples on this easy instance (it is eps-accurate w.h.p. at the
    # blessed sample size; this is a sanity bound, not the proof)
    g = two_cliques_bridge(12, bridge_weight=4.0)
    dyn = DynamicGraph(g, p=2, seed=1)
    res = dyn.query_cut(mode="approx")
    assert res.witness_value is not None
    assert res.witness_value <= 6.0 * max(res.value, 4.0)


# -- plane + plan cache integration -------------------------------------------


def test_plan_cache_invalidates_exactly_at_epoch_close():
    from repro.serve.cache import GraphCache

    g, stream = churn(n=40, m=200, seed=21, batches=2, batch_size=6)
    cache = GraphCache(plane=False)
    dyn = DynamicGraph(g, p=2, seed=21, trial_scale=0.2, plan_cache=cache)
    dyn.query_cut(mode="exact")
    dyn.query_cut(mode="exact")
    st = cache.stats()["derivatives"]
    assert st["entries"] == 1 and st["hits"] == 1
    dyn.update_edges(stream[0])
    dyn.query_cut(mode="exact")                 # new epoch: new plan key
    st = cache.stats()["derivatives"]
    assert st["entries"] == 2 and st["hits"] == 1
    cache.close()
