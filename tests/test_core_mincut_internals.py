"""Unit tests for the distributed minimum-cut building blocks."""

import math

import numpy as np
import pytest

from repro.bsp import run_spmd
from repro.core.mincut import (
    _eager_target,
    _edges_to_dense,
    _pick_min,
    _relabel_combine,
    dense_iterated_sampling,
    edges_to_distributed_matrix,
    parallel_eager_step,
    recursive_step,
)
from repro.core.contraction import row_block
from repro.graph import (
    AdjacencyMatrix,
    EdgeList,
    complete_graph,
    erdos_renyi,
    two_cliques_bridge,
)
from repro.graph.validate import networkx_mincut
from repro.rng import philox_stream


class TestHelpers:
    def test_eager_target(self):
        assert _eager_target(100, 64) == 9  # ceil(sqrt(64)) + 1
        assert _eager_target(5, 1_000) == 5  # capped at n
        assert _eager_target(2, 0) == 2

    def test_pick_min_deterministic_ties(self):
        a = (1.0, "a")
        b = (1.0, "b")
        assert _pick_min(a, b) is a  # left wins ties

    def test_pick_min_orders(self):
        assert _pick_min((2.0, "x"), (1.0, "y"))[1] == "y"

    def test_relabel_combine(self):
        u = np.array([0, 1, 2, 0])
        v = np.array([1, 2, 3, 1])
        w = np.array([1.0, 1.0, 1.0, 2.0])
        labels = np.array([0, 0, 1, 1])
        u2, v2, w2 = _relabel_combine(u, v, w, labels, 2)
        # (0,1) and (0,1)x2 become loops; (1,2) and (2,3) -> (0,1) w=1, loop
        assert u2.tolist() == [0]
        assert v2.tolist() == [1]
        assert w2.tolist() == [1.0]

    def test_relabel_combine_all_loops(self):
        u = np.array([0, 1])
        v = np.array([1, 0])
        w = np.array([1.0, 1.0])
        u2, v2, w2 = _relabel_combine(u, v, w, np.zeros(2, dtype=np.int64), 1)
        assert u2.size == 0

    def test_edges_to_dense(self):
        u = np.array([0, 0])
        v = np.array([1, 1])
        w = np.array([2.0, 3.0])
        a = _edges_to_dense(u, v, w, 3)
        assert a[0, 1] == 5.0 and a[1, 0] == 5.0
        assert a[2].sum() == 0


def spmd(prog, p, seed=0, args=()):
    return run_spmd(prog, p, seed=seed, args=args)


class TestParallelEagerStep:
    def test_reaches_target(self):
        g = erdos_renyi(60, 400, philox_stream(1), weighted=True)
        target = 12
        slices = g.slices(4)

        def prog(ctx):
            sl = slices[ctx.rank]
            out = yield from parallel_eager_step(
                ctx, ctx.comm, sl.u, sl.v, sl.w, g.n, target
            )
            return out

        res = spmd(prog, 4, seed=2)
        for u, v, w, labels, k in res.values:
            assert k == target
            assert labels.shape == (g.n,)
            assert labels.max() < k
        # all ranks agree on the final labels
        l0 = res.values[0][3]
        for val in res.values[1:]:
            assert np.array_equal(val[3], l0)

    def test_total_weight_never_increases(self):
        g = erdos_renyi(40, 250, philox_stream(2), weighted=True)
        slices = g.slices(3)

        def prog(ctx):
            sl = slices[ctx.rank]
            u, v, w, labels, k = yield from parallel_eager_step(
                ctx, ctx.comm, sl.u, sl.v, sl.w, g.n, 8
            )
            return float(w.sum())

        res = spmd(prog, 3, seed=3)
        assert sum(res.values) <= g.total_weight() + 1e-9

    def test_disconnected_stops_with_extra_components(self):
        g = EdgeList.from_pairs(10, [(0, 1), (1, 2), (5, 6), (6, 7)])
        slices = g.slices(2)

        def prog(ctx):
            sl = slices[ctx.rank]
            out = yield from parallel_eager_step(
                ctx, ctx.comm, sl.u, sl.v, sl.w, g.n, 2
            )
            u, v, w, labels, k = out
            return k, int(u.size)

        res = spmd(prog, 2, seed=4)
        k, m_local = res.values[0]
        assert k > 2  # cannot reach 2: six components exist
        assert sum(v[1] for v in res.values) == 0  # no edges left


class TestEdgesToDistributedMatrix:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_matches_dense(self, p):
        g = erdos_renyi(12, 40, philox_stream(5), weighted=True)
        expected = AdjacencyMatrix.from_edgelist(g).a
        slices = g.slices(p)

        def prog(ctx):
            sl = slices[ctx.rank]
            block = yield from edges_to_distributed_matrix(
                ctx, ctx.comm, sl.u, sl.v, sl.w, g.n
            )
            return block

        res = spmd(prog, p, seed=6)
        full = np.vstack(res.values)
        assert np.allclose(full, expected)

    def test_row_blocks_cover(self):
        g = complete_graph(9)
        slices = g.slices(4)

        def prog(ctx):
            sl = slices[ctx.rank]
            block = yield from edges_to_distributed_matrix(
                ctx, ctx.comm, sl.u, sl.v, sl.w, g.n
            )
            return block.shape

        res = spmd(prog, 4, seed=7)
        assert sum(shape[0] for shape in res.values) == g.n


class TestDenseIteratedSampling:
    def test_contracts_to_target(self):
        g = complete_graph(16)
        a = AdjacencyMatrix.from_edgelist(g).a

        def prog(ctx):
            lo, hi = row_block(ctx.rank, ctx.p, g.n)
            rows, labels, k, disc = yield from dense_iterated_sampling(
                ctx, ctx.comm, a[lo:hi].copy(), g.n, 5
            )
            return rows, labels, k, disc

        res = spmd(prog, 4, seed=8)
        rows, labels, k, disc = res.values[0]
        assert k == 5 and not disc
        full = np.vstack([v[0] for v in res.values])
        # the contraction of K16 by `labels` must equal the result
        expected = AdjacencyMatrix.from_edgelist(g).contract(labels, 5).a
        assert np.allclose(full, expected)

    def test_disconnected_flag(self):
        a = np.zeros((8, 8))
        a[0, 1] = a[1, 0] = 1.0  # 7 components, no way to reach 3

        def prog(ctx):
            lo, hi = row_block(ctx.rank, ctx.p, 8)
            out = yield from dense_iterated_sampling(
                ctx, ctx.comm, a[lo:hi].copy(), 8, 3
            )
            return out[2], out[3]

        res = spmd(prog, 2, seed=9)
        k, disc = res.values[0]
        assert disc and k > 3


class TestRecursiveStep:
    def run_recursive(self, g, p, seed):
        a = AdjacencyMatrix.from_edgelist(g).a

        def prog(ctx):
            lo, hi = row_block(ctx.rank, ctx.p, g.n)
            out = yield from recursive_step(ctx, ctx.comm, a[lo:hi].copy(), g.n)
            return out

        return spmd(prog, p, seed=seed)

    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_finds_valid_cut(self, p):
        g = erdos_renyi(24, 130, philox_stream(10), weighted=True)
        res = self.run_recursive(g, p, seed=11)
        val, side = res.values[0]
        assert g.cut_value(side) == pytest.approx(val)
        # every rank agrees
        for v2, s2 in res.values[1:]:
            assert v2 == val
            assert np.array_equal(s2, side)

    def test_best_of_seeds_finds_minimum(self):
        g = two_cliques_bridge(8, bridge_weight=2.0)
        best = math.inf
        for seed in range(6):
            res = self.run_recursive(g, 4, seed=seed)
            best = min(best, res.values[0][0])
        assert best == 2.0

    def test_small_matrix_brute_force_path(self):
        g = complete_graph(5)
        res = self.run_recursive(g, 4, seed=12)  # n <= max(base, q)
        val, side = res.values[0]
        assert val == 4.0

    def test_edgeless_returns_zero(self):
        def prog(ctx):
            lo, hi = row_block(ctx.rank, ctx.p, 6)
            rows = np.zeros((hi - lo, 6))
            out = yield from recursive_step(ctx, ctx.comm, rows, 6)
            return out

        res = spmd(prog, 3, seed=13)
        val, side = res.values[0]
        assert val == 0.0
        assert 0 < side.sum() < 6

    def test_never_below_truth(self):
        g = erdos_renyi(16, 60, philox_stream(14), weighted=True)
        truth = networkx_mincut(g)
        for seed in range(4):
            res = self.run_recursive(g, 3, seed=seed)
            assert res.values[0][0] >= truth - 1e-9
