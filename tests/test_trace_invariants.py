"""The trace layer's cornerstone invariants, enforced with zero tolerance.

For every algorithm, backend and seed::

    aggregate_trace(result.trace) == result.report

bit-exactly — no tolerance, no rounding.  Plus the structural guarantees
that make a trace trustworthy: per-rank superstep indices are dense and
monotone, deltas replay to the cumulative counters via
:func:`~repro.trace.events.exact_delta`, the JSON-lines serialization is
lossless, and the pre-existing ``RunResult.trace_kinds`` API keeps its
list-of-kinds shape.
"""

import math

import numpy as np
import pytest

from repro.bsp.engine import Engine
from repro.graph import erdos_renyi
from repro.harness import run_algorithm
from repro.rng import philox_stream
from repro.trace import (
    FINAL,
    RecordingTracer,
    TraceEvent,
    aggregate_trace,
    exact_delta,
    read_jsonl,
    write_jsonl,
)

ALGORITHMS = ["parallel_cc", "approx_cut", "square_root"]


def random_graph(seed, n=80, m=200, weighted=False):
    return erdos_renyi(n, m, philox_stream(seed), weighted=weighted)


def traced_run(algorithm, g, p, seed):
    tracer = RecordingTracer()
    kwargs = {"trial_scale": 0.05} if algorithm == "square_root" else {}
    res = run_algorithm(algorithm, g, p=p, seed=seed, tracer=tracer, **kwargs)
    return res


def assert_dense_supersteps(events):
    """Every rank's superstep indices, in canonical order, are 1, 2, ..."""
    per_rank = {}
    for ev in sorted(events, key=TraceEvent.order_key):
        if ev.kind == FINAL:
            continue
        for i, r in enumerate(ev.participants):
            per_rank.setdefault(r, []).append(ev.supersteps[i])
    assert per_rank, "trace has no collectives"
    for r, seq in per_rank.items():
        assert seq == list(range(1, len(seq) + 1)), (
            f"rank {r} superstep indices not dense/monotone: {seq}"
        )


class TestAggregationInvariant:
    """aggregate_trace(trace) == report, exactly, across the matrix."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_exact_for_algorithms(self, algorithm, seed):
        g = random_graph(seed + 11, weighted=(algorithm == "square_root"))
        res = traced_run(algorithm, g, p=4, seed=seed)
        assert res.trace is not None
        assert res.trace[-1].kind == FINAL
        assert aggregate_trace(res.trace) == res.report

    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_exact_across_processor_counts(self, p):
        g = random_graph(3)
        res = traced_run("parallel_cc", g, p=p, seed=5)
        assert aggregate_trace(res.trace) == res.report

    def test_random_program_property(self):
        """Seeded property test: random charge patterns (including awkward
        float magnitudes) still aggregate exactly."""
        rng = np.random.default_rng(1234)
        for trial in range(10):
            charges = rng.uniform(0.1, 1e9, size=(4, 6)).tolist()

            def prog(ctx, charges):
                import operator
                mine = charges[ctx.rank]
                for i, c in enumerate(mine):
                    ctx.counters.charge(ops=c, misses=c / 3.0)
                    yield from ctx.comm.allreduce(ctx.rank + i, operator.add)
                ctx.counters.charge(ops=mine[0])  # tail charge -> FINAL
                return ctx.rank

            eng = Engine(trace=True)
            res = eng.run(prog, 4, seed=trial, args=(charges,))
            assert aggregate_trace(res.trace) == res.report
            assert_dense_supersteps(res.trace)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            aggregate_trace([])

    def test_tampered_trace_rejected(self):
        """Dropping a collective breaks the dense-superstep validation."""
        g = random_graph(3)
        res = traced_run("parallel_cc", g, p=2, seed=5)
        body = [ev for ev in res.trace if ev.kind != FINAL]
        assert len(body) >= 2
        tampered = body[1:] + [ev for ev in res.trace if ev.kind == FINAL]
        with pytest.raises(ValueError, match="superstep index"):
            aggregate_trace(tampered)


class TestSuperstepStructure:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_dense_monotone_per_rank(self, algorithm):
        g = random_graph(21, weighted=(algorithm == "square_root"))
        res = traced_run(algorithm, g, p=3, seed=2)
        assert_dense_supersteps(res.trace)

    def test_lamport_steps_monotone_per_rank(self):
        g = random_graph(21)
        res = traced_run("square_root", g, p=4, seed=2)
        per_rank = {}
        for ev in res.trace:
            for r in ev.participants:
                per_rank.setdefault(r, []).append(ev.step)
        for r, steps in per_rank.items():
            assert steps == sorted(steps)
            assert len(set(steps)) == len(steps)


class TestExactDelta:
    def test_reconstruction_is_exact(self):
        prev = 0.0
        rng = np.random.default_rng(99)
        for target in rng.uniform(0.0, 2**53, size=200):
            d = exact_delta(prev, target)
            assert prev + d == target  # bitwise, not approximately
            prev = target

    def test_large_magnitude_boundary(self):
        # 2**53 is the first integer whose successor is not representable:
        # the naive difference stops round-tripping here.
        prev = 2.0**53 - 1.0
        cur = 2.0**53 + 2.0
        d = exact_delta(prev, cur)
        assert prev + d == cur

    def test_zero_and_negative_direction(self):
        assert exact_delta(5.0, 5.0) == 0.0
        d = exact_delta(10.0, 3.0)
        assert 10.0 + d == 3.0

    def test_telescoped_sums_match_snapshots(self):
        """The tracer's per-rank delta chains replay every cumulative value."""
        g = random_graph(17)
        res = traced_run("approx_cut", g, p=3, seed=4)
        sums = {}
        for ev in res.trace:
            for i, r in enumerate(ev.participants):
                acc = sums.setdefault(r, [0.0] * 5)
                for slot, ds in enumerate(
                    (ev.d_ops, ev.d_sent, ev.d_recv, ev.d_misses, ev.d_wait)
                ):
                    acc[slot] += ds[i]
        report = res.report
        assert max(acc[0] for acc in sums.values()) == report.computation
        assert max(acc[3] for acc in sums.values()) == report.misses
        assert max(acc[4] for acc in sums.values()) == report.wait
        assert sum(acc[0] for acc in sums.values()) == report.total_ops
        assert sum(acc[1] for acc in sums.values()) == report.total_volume


class TestJsonlRoundTrip:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_lossless(self, tmp_path, algorithm):
        g = random_graph(31, weighted=(algorithm == "square_root"))
        res = traced_run(algorithm, g, p=3, seed=8)
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(res.trace, path)
        assert count == len(res.trace)
        back = read_jsonl(path)
        assert back == res.trace
        assert aggregate_trace(back) == res.report

    def test_float_bits_survive(self, tmp_path):
        ev = TraceEvent(
            kind="allreduce", gid=1, participants=(0,), words=3,
            step=1, gseq=0, supersteps=(1,),
            d_ops=(0.1 + 0.2,), d_sent=(math.pi,), d_recv=(2.0**-40,),
            d_misses=(1e300,), d_wait=(4.9e-324,), wall_s=1.5,
        )
        path = tmp_path / "one.jsonl"
        write_jsonl([ev], path)
        (back,) = read_jsonl(path)
        assert back == ev


class TestTraceKindsRegression:
    """The pre-existing RunResult.trace_kinds API keeps working."""

    def test_list_of_kinds_excludes_final(self):
        def prog(ctx):
            import operator
            yield from ctx.comm.barrier()
            total = yield from ctx.comm.allreduce(1, operator.add)
            return total

        res = Engine(trace=True).run(prog, 3, seed=0)
        assert res.trace_kinds() == ["barrier", "allreduce"]
        assert res.trace[-1].kind == FINAL

    def test_untraced_run_raises(self):
        def prog(ctx):
            yield from ctx.comm.barrier()
            return 0

        res = Engine().run(prog, 2, seed=0)
        assert res.trace is None
        with pytest.raises(ValueError):
            res.trace_kinds()

    def test_trace_field_rides_result_objects(self):
        g = random_graph(5)
        res = traced_run("parallel_cc", g, p=2, seed=1)
        assert isinstance(res.trace, list)
        untraced = run_algorithm("parallel_cc", g, p=2, seed=1)
        assert untraced.trace is None
        assert untraced.report == res.report
